#include "net/admission.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "core/sync.h"
#include "core/telemetry.h"

namespace vdb::net {

namespace {

struct Metrics {
  Counter& admitted;
  Counter& throttled;
  Counter& shed_queue_full;
  Counter& breaker_rejected;
  Counter& rejected_draining;
  Counter& breaker_trips;
  Counter& tenants_evicted;
  Gauge& queue_depth;
  Gauge& in_flight;
  Gauge& breaker_open;

  static Metrics& Get() {
    auto& reg = Registry::Global();
    static Metrics m{
        reg.GetCounter("vdb_server_admitted_total"),
        reg.GetCounter("vdb_server_throttled_total"),
        reg.GetCounter("vdb_server_shed_queue_full_total"),
        reg.GetCounter("vdb_server_breaker_rejected_total"),
        reg.GetCounter("vdb_server_rejected_draining_total"),
        reg.GetCounter("vdb_server_breaker_trips_total"),
        reg.GetCounter("vdb_server_tenants_evicted_total"),
        reg.GetGauge("vdb_server_queue_depth"),
        reg.GetGauge("vdb_server_in_flight"),
        reg.GetGauge("vdb_server_breaker_open"),
    };
    return m;
  }
};

/// Tenant name -> Prometheus label value: restricted to [a-zA-Z0-9_-]
/// (anything else becomes '_' so a tenant cannot inject label syntax),
/// truncated, "" mapped to "default".
std::string SanitizeTenantLabel(const std::string& tenant) {
  std::string label;
  for (char c : tenant) {
    bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
              c == '-';
    label.push_back(ok ? c : '_');
    if (label.size() >= 32) break;
  }
  if (label.empty()) label = "default";
  return label;
}

/// Labeled per-tenant counter with bounded label cardinality: after
/// kMaxTenantLabels distinct labels, new tenants fold into "other".
Counter& TenantCounter(const char* base, const std::string& tenant) {
  static Mutex mu;
  static std::set<std::string>* seen VDB_GUARDED_BY(mu) =
      new std::set<std::string>();
  std::string label = SanitizeTenantLabel(tenant);
  {
    MutexLock lock(mu);
    auto it = seen->find(label);
    if (it == seen->end()) {
      if (seen->size() >= AdmissionController::kMaxTenantLabels) {
        label = "other";
      } else {
        seen->insert(label);
      }
    }
  }
  return Registry::Global().GetCounter(std::string(base) + "{tenant=\"" +
                                       label + "\"}");
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions opts)
    : opts_(std::move(opts)) {}

const TenantQuota& AdmissionController::QuotaFor(
    const std::string& tenant) const {
  auto it = opts_.tenant_quotas.find(tenant);
  return it == opts_.tenant_quotas.end() ? opts_.default_quota : it->second;
}

AdmitDecision AdmissionController::TryAdmit(const std::string& tenant,
                                            Clock::time_point now) {
  AdmitDecision decision;
  {
    MutexLock lock(mu_);
    decision = TryAdmitLocked(tenant, now);
  }
  // Labeled per-tenant counters outside mu_: every tenant name is a
  // map lookup (and possibly a registration) under Registry::mu_, so
  // it stays off the admission hold. Registry::mu_ is a §9.1 leaf —
  // the first Metrics::Get() inside TryAdmitLocked may also take it
  // under mu_, which is the one allowed nesting direction.
  if (decision.verdict == AdmitVerdict::kAdmit) {
    TenantCounter("vdb_server_tenant_admitted_total", tenant).Inc();
  } else {
    TenantCounter("vdb_server_tenant_shed_total", tenant).Inc();
  }
  return decision;
}

AdmitDecision AdmissionController::TryAdmitLocked(const std::string& tenant,
                                                  Clock::time_point now) {
  Metrics& m = Metrics::Get();
  TenantState& state = tenants_[tenant];
  state.last_seen = now;
  // Count every rejection against the requesting tenant, whatever the
  // cause — "my shed rate" is the number a tenant dashboard needs even
  // when the cause is server-wide (queue, breaker, drain).
  auto reject = [&state](AdmitDecision d) {
    state.shed += 1;
    return d;
  };

  if (draining_) {
    m.rejected_draining.Inc();
    // No retry hint: this process is going away; the client should
    // re-resolve, not re-send here.
    return reject({AdmitVerdict::kDraining, 0});
  }

  if (breaker_open_until_ != Clock::time_point{}) {
    if (now < breaker_open_until_) {
      m.breaker_rejected.Inc();
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           breaker_open_until_ - now)
                           .count();
      return reject(
          {AdmitVerdict::kBreakerOpen,
           std::max<std::uint32_t>(static_cast<std::uint32_t>(remaining), 1)});
    }
    // Cooldown over — half-open: admit traffic again; the next backend
    // failure streak re-trips immediately.
    breaker_open_until_ = {};
    m.breaker_open.Set(0);
  }

  if (queued_ >= opts_.max_queue_depth) {
    m.shed_queue_full.Inc();
    return reject({AdmitVerdict::kQueueFull, opts_.retry_after_floor_ms});
  }

  const TenantQuota& quota = QuotaFor(tenant);
  if (!state.initialized) {
    state.tokens = quota.burst;
    state.last_refill = now;
    state.initialized = true;
  }

  if (state.in_flight >= quota.max_in_flight) {
    m.throttled.Inc();
    return reject({AdmitVerdict::kThrottled, opts_.retry_after_floor_ms});
  }

  // Token-bucket refill: elapsed * rate, capped at burst. Negative
  // elapsed (caller clock misuse) refills nothing.
  double elapsed =
      std::chrono::duration<double>(now - state.last_refill).count();
  if (elapsed > 0) {
    state.tokens = std::min(quota.burst,
                            state.tokens + elapsed * quota.tokens_per_sec);
    state.last_refill = now;
  }

  if (state.tokens < 1.0) {
    m.throttled.Inc();
    std::uint32_t retry_ms = opts_.retry_after_floor_ms;
    if (quota.tokens_per_sec > 0) {
      double wait_s = (1.0 - state.tokens) / quota.tokens_per_sec;
      retry_ms = std::max<std::uint32_t>(
          retry_ms, static_cast<std::uint32_t>(std::ceil(wait_s * 1e3)));
    }
    return reject({AdmitVerdict::kThrottled, retry_ms});
  }

  state.tokens -= 1.0;
  state.in_flight += 1;
  state.admitted += 1;
  ++queued_;
  m.admitted.Inc();
  m.queue_depth.Set(static_cast<std::int64_t>(queued_));
  m.in_flight.Set(static_cast<std::int64_t>(queued_ + executing_));
  return {AdmitVerdict::kAdmit, 0};
}

void AdmissionController::OnStart() {
  Metrics& m = Metrics::Get();
  MutexLock lock(mu_);
  if (queued_ > 0) --queued_;
  ++executing_;
  m.queue_depth.Set(static_cast<std::int64_t>(queued_));
}

void AdmissionController::OnComplete(const std::string& tenant,
                                     bool backend_healthy,
                                     Clock::time_point now) {
  Metrics& m = Metrics::Get();
  MutexLock lock(mu_);
  if (executing_ > 0) --executing_;
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    if (it->second.in_flight > 0) it->second.in_flight -= 1;
    it->second.last_seen = now;
  }
  m.in_flight.Set(static_cast<std::int64_t>(queued_ + executing_));

  if (opts_.breaker_threshold == 0) return;
  if (backend_healthy) {
    consecutive_failures_ = 0;
    return;
  }
  if (++consecutive_failures_ >= opts_.breaker_threshold) {
    consecutive_failures_ = 0;
    breaker_open_until_ =
        now + std::chrono::milliseconds(opts_.breaker_cooldown_ms);
    m.breaker_trips.Inc();
    m.breaker_open.Set(1);
  }
}

std::size_t AdmissionController::EvictIdleTenants(
    Clock::time_point now, std::chrono::milliseconds idle_for) {
  Metrics& m = Metrics::Get();
  std::size_t evicted = 0;
  {
    MutexLock lock(mu_);
    for (auto it = tenants_.begin(); it != tenants_.end();) {
      const TenantState& state = it->second;
      // In-flight work pins the entry: its OnComplete must still find
      // the in_flight count to decrement. last_seen covers completions
      // too, so a tenant with slow queries does not look idle.
      if (state.in_flight == 0 && now - state.last_seen >= idle_for) {
        it = tenants_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0) m.tenants_evicted.Inc(evicted);
  return evicted;
}

void AdmissionController::BeginDrain() {
  MutexLock lock(mu_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  MutexLock lock(mu_);
  return draining_;
}

std::size_t AdmissionController::InFlight() const {
  MutexLock lock(mu_);
  return queued_ + executing_;
}

std::size_t AdmissionController::QueueDepth() const {
  MutexLock lock(mu_);
  return queued_;
}

std::string AdmissionController::MetricLabelFor(const std::string& tenant) {
  return SanitizeTenantLabel(tenant);
}

std::vector<AdmissionController::TenantStats>
AdmissionController::TenantStatsSnapshot() const {
  MutexLock lock(mu_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_) {
    TenantStats ts;
    ts.tenant = tenant;
    ts.admitted = state.admitted;
    ts.shed = state.shed;
    ts.in_flight = state.in_flight;
    out.push_back(std::move(ts));
  }
  return out;  // std::map iteration: already sorted by tenant
}

}  // namespace vdb::net
