#ifndef VDB_NET_SERVER_H_
#define VDB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "db/database.h"
#include "net/admission.h"
#include "net/conn.h"
#include "net/protocol.h"

namespace vdb::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see Server::port())
  std::size_t num_workers = 4;
  AdmissionOptions admission;
  /// Budget for graceful drain: in-flight work past this is aborted
  /// with DRAINING responses and the remaining sockets are closed.
  std::uint32_t drain_deadline_ms = 5000;
  /// Deadline applied to requests that carry none (0 = unlimited).
  std::uint32_t default_deadline_ms = 0;
  int listen_backlog = 256;
};

/// What Shutdown observed; `clean` means every admitted request finished
/// and every response byte was flushed before the drain deadline.
struct DrainReport {
  bool clean = false;
  double seconds = 0.0;
  std::size_t aborted_requests = 0;  ///< in-flight work past the deadline
  std::size_t closed_connections = 0;
};

/// Epoll-based query server over the wire protocol of protocol.h
/// (DESIGN.md §10). Single event-loop thread owns the listener and all
/// connections; a pool of `num_workers` threads executes admitted
/// queries against `db` (read-only — the Database must not be mutated
/// while the server runs) and hands responses back to the loop through
/// an eventfd-signalled queue.
///
/// Request lifecycle:
///   frame -> decode -> AdmissionController::TryAdmit
///     rejected  -> immediate response with RETRY-AFTER (never a stall)
///     admitted  -> bounded run queue -> worker:
///        deadline already passed -> DEADLINE_EXCEEDED, *not executed*
///        else ExecuteQueryTraced with the deadline in SearchParams
///
/// Graceful drain (RequestDrain is async-signal-safe; vdbsh wires it to
/// SIGTERM): stop accepting, reject new work with DRAINING, let queued
/// and executing requests finish under the drain deadline, flush every
/// response buffer, then close. Telemetry: vdb_server_* counters/gauges
/// plus the vdb_server_drain_seconds histogram.
///
/// Failpoint sites: net.accept.fail (accepted socket immediately
/// closed), net.worker.stall (delay:<ms> pause before executing), and
/// the conn-level net.read/write.short|eintr sites.
class Server {
 public:
  /// Binds, listens, and spawns the event loop + workers. `db` is
  /// borrowed and must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               ServerOptions opts);

  ~Server();  ///< Shutdown() if still running

  /// The bound port (resolves port=0 via getsockname).
  std::uint16_t port() const { return port_; }

  /// Initiates drain. Async-signal-safe (atomic store + eventfd write);
  /// callable from a SIGTERM handler and from any thread. Idempotent.
  void RequestDrain();

  /// RequestDrain + join everything; returns what the drain observed.
  /// Idempotent: later calls return the first report.
  DrainReport Shutdown();

  bool draining() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

 private:
  struct Job {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::string tenant;
    std::string text;
    bool trace = false;  ///< kQueryFlagTrace: span tree in the response
    std::chrono::steady_clock::time_point deadline{};  ///< zero = none
    std::chrono::steady_clock::time_point enqueued{};
  };
  struct PendingResponse {
    std::uint64_t conn_id = 0;
    Response resp;
  };

  Server(Database* db, ServerOptions opts);

  Status Listen();
  void EventLoop();
  void WorkerLoop(std::size_t worker_index);

  void AcceptReady();
  void HandleFrame(Conn* conn, std::span<const std::uint8_t> payload);
  void HandleQuery(Conn* conn, Request req);
  void CloseConn(std::uint64_t conn_id);
  void FlushResponses();
  void PokeLoop();
  /// True when nothing is admitted, queued, or buffered — drain done.
  bool DrainComplete();
  /// Body of the kStats wire frame (DESIGN.md §7.4): uptime, windowed
  /// qps/latency, 10s verdict mix, lifetime totals, per-tenant admission
  /// accounting, and the flight-recorder worst-queries dump. Served
  /// inline on the event loop like kMetrics.
  std::string BuildStatsJson() const;

  Database* db_;
  ServerOptions opts_;
  std::chrono::steady_clock::time_point start_time_{};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: workers/signals -> event loop

  AdmissionController admission_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Event-loop-owned (no lock, and deliberately no capability: only
  // EventLoop and the helpers it calls inline touch these): id ->
  // connection map and the id allocator.
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  // Run queue (event loop -> workers). §9.1 edges: the drain-abort
  // path calls admission_.OnComplete while holding queue_mu_, and
  // Shutdown acquires shutdown_mu_ first — so
  // shutdown_mu_ -> queue_mu_ -> AdmissionController::mu_.
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Job> job_queue_ VDB_GUARDED_BY(queue_mu_);
  bool stop_workers_ VDB_GUARDED_BY(queue_mu_) = false;

  // Response queue (workers -> event loop). §9.1 leaf.
  Mutex resp_mu_;
  std::deque<PendingResponse> resp_queue_ VDB_GUARDED_BY(resp_mu_);

  std::atomic<bool> drain_requested_{false};
  std::atomic<std::size_t> executing_{0};

  Mutex shutdown_mu_ VDB_ACQUIRED_BEFORE(queue_mu_);
  bool shutdown_done_ VDB_GUARDED_BY(shutdown_mu_) = false;
  /// Written by the event loop during drain, read by Shutdown strictly
  /// after joining loop_thread_ — the join is the ordering, not a lock.
  DrainReport report_;
};

}  // namespace vdb::net

#endif  // VDB_NET_SERVER_H_
