#ifndef VDB_NET_ADMISSION_H_
#define VDB_NET_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sync.h"

namespace vdb::net {

/// Per-tenant steady-state limits. The token bucket (`tokens_per_sec`
/// refill into a bucket capped at `burst`) shapes request *rate*; the
/// in-flight quota caps the tenant's concurrent footprint regardless of
/// rate (one slow tenant cannot monopolize the worker pool).
struct TenantQuota {
  double tokens_per_sec = 500.0;
  double burst = 1000.0;
  std::uint32_t max_in_flight = 64;
};

struct AdmissionOptions {
  TenantQuota default_quota;
  /// Overrides for named tenants (the multi-tenant quota table).
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Run-queue depth bound: admitted-but-not-started requests beyond
  /// this are shed with QUEUE_FULL instead of stalling the accept path.
  std::size_t max_queue_depth = 256;
  /// Backend circuit breaker: consecutive backend failures (internal /
  /// IO / corruption statuses — never client errors) that open it.
  /// 0 disables the breaker.
  std::uint32_t breaker_threshold = 16;
  /// Wall-clock cooldown while open; admission fast-fails BREAKER_OPEN
  /// with the remaining cooldown as RETRY-AFTER.
  std::uint32_t breaker_cooldown_ms = 500;
  /// Floor for advertised RETRY-AFTER hints (quota and queue sheds).
  std::uint32_t retry_after_floor_ms = 10;
};

enum class AdmitVerdict {
  kAdmit,
  kThrottled,    ///< token bucket empty or in-flight quota reached
  kQueueFull,    ///< run queue at max_queue_depth
  kBreakerOpen,  ///< backend breaker cooling down
  kDraining,     ///< server is draining; no new work
};

struct AdmitDecision {
  AdmitVerdict verdict = AdmitVerdict::kAdmit;
  /// Client backoff hint; nonzero iff the verdict is a rejection.
  std::uint32_t retry_after_ms = 0;
};

/// Admission state machine for the serving layer (DESIGN.md §10).
///
/// Every query request passes through TryAdmit before it may enter the
/// run queue; an admitted request MUST later report OnStart (dequeued by
/// a worker) and exactly one OnComplete (including deadline-cancelled
/// and drain-aborted requests), which is what keeps the queue-depth and
/// in-flight accounting — and therefore backpressure — truthful.
///
/// Time is injected (`now` parameters) so refill edges, breaker
/// cooldowns, and RETRY-AFTER math are unit-testable without sleeping.
/// All state sits behind one mutex: admission runs per *request frame*,
/// orders of magnitude off the index hot path.
///
/// Reports into the global registry: vdb_server_admitted_total,
/// _throttled_total, _shed_queue_full_total, _breaker_rejected_total,
/// _rejected_draining_total, _breaker_trips_total,
/// _tenants_evicted_total counters and the
/// vdb_server_queue_depth / _in_flight / _breaker_open gauges; plus
/// per-tenant labeled counters vdb_server_tenant_admitted_total /
/// vdb_server_tenant_shed_total{tenant="..."} (labels sanitized, capped
/// at kMaxTenantLabels distinct values then folded into tenant="other"
/// so a hostile tenant-name stream cannot grow the registry unbounded).
class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  /// Distinct tenant label values in the metrics registry before new
  /// tenants fold into tenant="other".
  static constexpr std::size_t kMaxTenantLabels = 32;

  explicit AdmissionController(AdmissionOptions opts);

  /// Verdict for one query from `tenant` ("" = default bucket).
  /// kAdmit charges one token and reserves a queue slot.
  AdmitDecision TryAdmit(const std::string& tenant, Clock::time_point now);

  /// A worker dequeued the request (queue slot freed; still in flight).
  void OnStart();

  /// The request finished (any way: executed, failed, deadline-expired,
  /// drain-aborted). `backend_healthy` must be false only for backend
  /// faults (internal/IO/corruption) — client errors and deadline
  /// cancellations count as healthy for the breaker.
  void OnComplete(const std::string& tenant, bool backend_healthy,
                  Clock::time_point now);

  /// Evicts tenants with no in-flight work whose last admission
  /// activity (TryAdmit or OnComplete) is older than `idle_for`;
  /// returns how many were dropped. The serving event loop calls this
  /// periodically so a long-lived server's tenant map tracks the
  /// *active* tenant set instead of growing monotonically. Eviction
  /// resets the tenant's cumulative admitted/shed counts in
  /// TenantStatsSnapshot (the labeled lifetime counters in the registry
  /// are unaffected); a returning tenant re-initializes with a full
  /// burst, exactly like a first-ever arrival.
  std::size_t EvictIdleTenants(Clock::time_point now,
                               std::chrono::milliseconds idle_for);

  /// Enters drain: every subsequent TryAdmit returns kDraining.
  void BeginDrain();
  bool draining() const;

  /// Admitted-but-unfinished request count (queued + executing).
  std::size_t InFlight() const;
  /// Admitted-but-not-started count (the backpressure signal).
  std::size_t QueueDepth() const;

  /// Cumulative per-tenant accounting for the stats wire frame: one
  /// entry per tenant ever seen, sorted by tenant name.
  struct TenantStats {
    std::string tenant;          ///< "" = default bucket
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;      ///< throttled+queue_full+breaker+draining
    std::uint32_t in_flight = 0;
  };
  std::vector<TenantStats> TenantStatsSnapshot() const;

  /// The sanitized label value this tenant reports under in the labeled
  /// per-tenant counters ("" -> "default"). Does not account for
  /// cardinality folding: a tenant past the kMaxTenantLabels cap
  /// actually reports as "other".
  static std::string MetricLabelFor(const std::string& tenant);

  const AdmissionOptions& options() const { return opts_; }

 private:
  struct TenantState {
    double tokens = 0.0;
    Clock::time_point last_refill{};
    Clock::time_point last_seen{};  ///< last TryAdmit/OnComplete touch
    bool initialized = false;
    std::uint32_t in_flight = 0;
    std::uint64_t admitted = 0;  ///< cumulative TryAdmit -> kAdmit
    std::uint64_t shed = 0;      ///< cumulative TryAdmit -> any rejection
  };

  const TenantQuota& QuotaFor(const std::string& tenant) const;
  /// TryAdmit body; mu_ held (compiler-checked). Updates per-tenant
  /// cumulative counts but not the labeled registry counters (those are
  /// bumped by the caller after releasing mu_ to keep the hold short;
  /// first-call metric registration inside may take leaf Registry::mu_).
  AdmitDecision TryAdmitLocked(const std::string& tenant,
                               Clock::time_point now) VDB_REQUIRES(mu_);

  const AdmissionOptions opts_;
  /// §9.1: may be held while registering metrics (leaf Registry::mu_);
  /// Server::queue_mu_ is held around OnComplete on the drain-abort
  /// path, so queue_mu_ orders before this mutex.
  mutable Mutex mu_;
  std::map<std::string, TenantState> tenants_ VDB_GUARDED_BY(mu_);
  std::size_t queued_ VDB_GUARDED_BY(mu_) = 0;
  std::size_t executing_ VDB_GUARDED_BY(mu_) = 0;
  bool draining_ VDB_GUARDED_BY(mu_) = false;
  // Breaker state: consecutive backend failures and the cooldown edge.
  std::uint32_t consecutive_failures_ VDB_GUARDED_BY(mu_) = 0;
  Clock::time_point breaker_open_until_ VDB_GUARDED_BY(mu_){};
};

}  // namespace vdb::net

#endif  // VDB_NET_ADMISSION_H_
