#ifndef VDB_NET_CLIENT_H_
#define VDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "net/protocol.h"

namespace vdb::net {

/// Minimal blocking client for the wire protocol — what loadgen, vdbsh
/// and the tests speak. One request in flight per client (the *protocol*
/// supports pipelining via request ids; this helper keeps the simple
/// lock-step shape). Not thread-safe; use one Client per thread.
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 std::uint16_t port);
  ~Client();  ///< closes the socket
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends a query and waits for its response. The returned Response may
  /// carry a non-kOk status (throttled / queue-full / draining / query
  /// errors) — transport-level failures are the Status channel, protocol
  /// verdicts are the Response. With `trace` set the server executes the
  /// query traced and returns its span tree + per-stage latency
  /// attribution in Response::body (remote EXPLAIN ANALYZE).
  Result<Response> Query(const std::string& text, const std::string& tenant,
                         std::uint32_t deadline_ms, bool trace = false);

  Result<Response> Ping();
  /// Metrics snapshot; the JSON lands in Response::body.
  Result<Response> Metrics();
  /// Windowed stats + flight-recorder dump (the .top feed); JSON in
  /// Response::body. Served inline by the server even under overload.
  Result<Response> Stats();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  Result<Response> RoundTrip(const Request& req);

  int fd_;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> frame_buf_;
};

}  // namespace vdb::net

#endif  // VDB_NET_CLIENT_H_
