#include "net/protocol.h"

#include <cstring>

namespace vdb::net {

namespace {

void PutU8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}
void PutU16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(v & 0xff);
  out->push_back((v >> 8) & 0xff);
}
void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}
void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}
void PutF32(std::vector<std::uint8_t>* out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}
void PutString(std::vector<std::uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian cursor (mirror of the WAL reader; local
/// because the two formats evolve independently).
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool U8(std::uint8_t* v) { return Fixed(v, 1); }
  bool U16(std::uint16_t* v) { return Fixed(v, 2); }
  bool U32(std::uint32_t* v) { return Fixed(v, 4); }
  bool U64(std::uint64_t* v) { return Fixed(v, 8); }
  bool F32(float* v) {
    std::uint32_t bits;
    if (!U32(&bits)) return false;
    std::memcpy(v, &bits, 4);
    return true;
  }
  bool String(std::string* out, std::size_t len) {
    if (at_ + len > data_.size()) return false;
    out->assign(reinterpret_cast<const char*>(data_.data() + at_), len);
    at_ += len;
    return true;
  }
  bool AtEnd() const { return at_ == data_.size(); }

 private:
  template <typename T>
  bool Fixed(T* v, std::size_t n) {
    if (at_ + n > data_.size()) return false;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc |= static_cast<std::uint64_t>(data_[at_ + i]) << (8 * i);
    }
    *v = static_cast<T>(acc);
    at_ += n;
    return true;
  }
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated frame: ") + what);
}

}  // namespace

const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireStatus::kNotFound: return "NOT_FOUND";
    case WireStatus::kCorruption: return "CORRUPTION";
    case WireStatus::kIoError: return "IO_ERROR";
    case WireStatus::kInternal: return "INTERNAL";
    case WireStatus::kUnsupported: return "UNSUPPORTED";
    case WireStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireStatus::kThrottled: return "THROTTLED";
    case WireStatus::kQueueFull: return "QUEUE_FULL";
    case WireStatus::kBreakerOpen: return "BREAKER_OPEN";
    case WireStatus::kDraining: return "DRAINING";
    case WireStatus::kMalformed: return "MALFORMED";
  }
  return "UNKNOWN";
}

WireStatus WireStatusFromStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk: return WireStatus::kOk;
    case StatusCode::kInvalidArgument: return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound: return WireStatus::kNotFound;
    case StatusCode::kAlreadyExists: return WireStatus::kInvalidArgument;
    case StatusCode::kOutOfRange: return WireStatus::kInvalidArgument;
    case StatusCode::kUnsupported: return WireStatus::kUnsupported;
    case StatusCode::kCorruption: return WireStatus::kCorruption;
    case StatusCode::kIoError: return WireStatus::kIoError;
    case StatusCode::kFailedPrecondition: return WireStatus::kInvalidArgument;
    case StatusCode::kInternal: return WireStatus::kInternal;
    case StatusCode::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    case StatusCode::kUnavailable: return WireStatus::kThrottled;
  }
  return WireStatus::kInternal;
}

Status StatusFromWire(WireStatus s, const std::string& message) {
  switch (s) {
    case WireStatus::kOk: return Status::Ok();
    case WireStatus::kInvalidArgument: return Status::InvalidArgument(message);
    case WireStatus::kNotFound: return Status::NotFound(message);
    case WireStatus::kCorruption: return Status::Corruption(message);
    case WireStatus::kIoError: return Status::IoError(message);
    case WireStatus::kInternal: return Status::Internal(message);
    case WireStatus::kUnsupported: return Status::Unsupported(message);
    case WireStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case WireStatus::kThrottled:
    case WireStatus::kQueueFull:
    case WireStatus::kBreakerOpen:
    case WireStatus::kDraining:
      return Status::Unavailable(message);
    case WireStatus::kMalformed: return Status::InvalidArgument(message);
  }
  return Status::Internal(message);
}

bool IsRetryable(WireStatus s) {
  return s == WireStatus::kThrottled || s == WireStatus::kQueueFull ||
         s == WireStatus::kBreakerOpen || s == WireStatus::kDraining;
}

void EncodeRequest(const Request& req, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  PutU8(&payload, static_cast<std::uint8_t>(req.type));
  PutU64(&payload, req.request_id);
  if (req.type == MsgType::kQuery) {
    PutU16(&payload, static_cast<std::uint16_t>(req.tenant.size()));
    payload.insert(payload.end(), req.tenant.begin(), req.tenant.end());
    PutU32(&payload, req.deadline_ms);
    PutU8(&payload, req.trace ? kQueryFlagTrace : 0);
    PutString(&payload, req.text);
  }
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

void EncodeResponse(const Response& resp, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  PutU8(&payload, static_cast<std::uint8_t>(MsgType::kResponse));
  PutU64(&payload, resp.request_id);
  PutU8(&payload, static_cast<std::uint8_t>(resp.status));
  PutU32(&payload, resp.retry_after_ms);
  PutString(&payload, resp.message);
  PutU32(&payload, static_cast<std::uint32_t>(resp.rows.size()));
  for (const Neighbor& n : resp.rows) {
    PutU64(&payload, n.id);
    PutF32(&payload, n.dist);
  }
  PutString(&payload, resp.body);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

FrameResult ExtractFrame(std::span<const std::uint8_t> buf,
                         std::span<const std::uint8_t>* payload,
                         std::size_t* consumed) {
  if (buf.size() < 4) return FrameResult::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) return FrameResult::kTooLarge;
  if (buf.size() < 4u + len) return FrameResult::kNeedMore;
  *payload = buf.subspan(4, len);
  *consumed = 4u + len;
  return FrameResult::kReady;
}

Result<Request> DecodeRequest(std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  std::uint8_t type;
  Request req;
  if (!c.U8(&type)) return Truncated("type");
  if (!c.U64(&req.request_id)) return Truncated("request_id");
  switch (static_cast<MsgType>(type)) {
    case MsgType::kQuery: {
      req.type = MsgType::kQuery;
      std::uint16_t tenant_len;
      if (!c.U16(&tenant_len)) return Truncated("tenant_len");
      if (!c.String(&req.tenant, tenant_len)) return Truncated("tenant");
      if (!c.U32(&req.deadline_ms)) return Truncated("deadline_ms");
      std::uint8_t flags;
      if (!c.U8(&flags)) return Truncated("flags");
      req.trace = (flags & kQueryFlagTrace) != 0;  // unknown bits ignored
      std::uint32_t text_len;
      if (!c.U32(&text_len)) return Truncated("text_len");
      if (!c.String(&req.text, text_len)) return Truncated("text");
      break;
    }
    case MsgType::kPing:
      req.type = MsgType::kPing;
      break;
    case MsgType::kMetrics:
      req.type = MsgType::kMetrics;
      break;
    case MsgType::kStats:
      req.type = MsgType::kStats;
      break;
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(type));
  }
  if (!c.AtEnd()) return Status::InvalidArgument("trailing bytes in request");
  return req;
}

Result<Response> DecodeResponse(std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  std::uint8_t type;
  if (!c.U8(&type)) return Truncated("type");
  if (static_cast<MsgType>(type) != MsgType::kResponse) {
    return Status::InvalidArgument("not a response frame");
  }
  Response resp;
  std::uint8_t status_byte;
  if (!c.U64(&resp.request_id)) return Truncated("request_id");
  if (!c.U8(&status_byte)) return Truncated("status");
  if (status_byte > static_cast<std::uint8_t>(WireStatus::kMalformed)) {
    return Status::InvalidArgument("unknown wire status " +
                                   std::to_string(status_byte));
  }
  resp.status = static_cast<WireStatus>(status_byte);
  if (!c.U32(&resp.retry_after_ms)) return Truncated("retry_after_ms");
  std::uint32_t message_len;
  if (!c.U32(&message_len)) return Truncated("message_len");
  if (!c.String(&resp.message, message_len)) return Truncated("message");
  std::uint32_t nrows;
  if (!c.U32(&nrows)) return Truncated("nrows");
  // Each row is 12 bytes; reject row counts the payload cannot hold
  // before reserving (a hostile nrows must not drive an allocation).
  if (nrows > payload.size() / 12) return Truncated("rows");
  resp.rows.reserve(nrows);
  for (std::uint32_t i = 0; i < nrows; ++i) {
    Neighbor n;
    if (!c.U64(&n.id) || !c.F32(&n.dist)) return Truncated("row");
    resp.rows.push_back(n);
  }
  std::uint32_t body_len;
  if (!c.U32(&body_len)) return Truncated("body_len");
  if (!c.String(&resp.body, body_len)) return Truncated("body");
  if (!c.AtEnd()) return Status::InvalidArgument("trailing bytes in response");
  return resp;
}

}  // namespace vdb::net
