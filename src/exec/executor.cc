#include "exec/executor.h"

#include "core/topk.h"
#include "exec/trace.h"

namespace vdb {

namespace {

/// Wraps predicate bitmask evaluation in a trace span.
Result<Bitset> EvaluatePredicate(const Predicate& pred,
                                 const AttributeStore& attrs,
                                 QueryTrace* trace) {
  TraceScope span(trace, "predicate_filter");
  VDB_ASSIGN_OR_RETURN(Bitset bits, pred.Evaluate(attrs));
  span.Note("matching_rows", std::to_string(bits.Count()));
  return bits;
}

}  // namespace

Status HybridExecutor::BruteForce(const Predicate& pred, const float* query,
                                  const SearchParams& params,
                                  std::vector<Neighbor>* out,
                                  ExecStats* stats) const {
  VDB_ASSIGN_OR_RETURN(Bitset bits,
                       EvaluatePredicate(pred, *view_.attrs, params.trace));
  if (stats != nullptr) {
    stats->bitmask_rows += view_.attrs->NumRows();
    stats->matching_rows += bits.Count();
  }
  TraceScope scan_span(params.trace, "brute_force_scan");
  TopK top(params.k);
  for (VectorId id : view_.vectors->LiveIds()) {
    if (id < bits.size() && !bits.Test(static_cast<std::size_t>(id))) continue;
    const float* vec = view_.vectors->Get(id);
    float dist = view_.scorer->Distance(query, vec);
    if (stats != nullptr) ++stats->search.distance_comps;
    top.Push(id, dist);
  }
  *out = top.Take();
  return Status::Ok();
}

Status HybridExecutor::Execute(const HybridPlan& plan, const Predicate& pred,
                               const float* query, const SearchParams& params,
                               std::vector<Neighbor>* out,
                               ExecStats* stats) const {
  if (view_.vectors == nullptr || view_.scorer == nullptr ||
      view_.attrs == nullptr) {
    return Status::FailedPrecondition("incomplete collection view");
  }
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  out->clear();

  switch (plan.kind) {
    case PlanKind::kBruteForceHybrid:
      return BruteForce(pred, query, params, out, stats);

    case PlanKind::kPreFilterIndexScan: {
      if (view_.index == nullptr) {
        return Status::FailedPrecondition("plan requires an index");
      }
      VDB_ASSIGN_OR_RETURN(
          Bitset bits, EvaluatePredicate(pred, *view_.attrs, params.trace));
      if (stats != nullptr) {
        stats->bitmask_rows += view_.attrs->NumRows();
        stats->matching_rows += bits.Count();
      }
      BitsetIdFilter filter(&bits);
      SearchParams p = params;
      p.filter = &filter;
      p.filter_mode = FilterMode::kBlockFirst;
      return view_.index->Search(query, p, out,
                                 stats != nullptr ? &stats->search : nullptr);
    }

    case PlanKind::kPostFilterIndexScan: {
      if (view_.index == nullptr) {
        return Status::FailedPrecondition("plan requires an index");
      }
      PredicateIdFilter filter(&pred, view_.attrs);
      SearchParams p = params;
      p.filter = &filter;
      p.filter_mode = FilterMode::kPostFilter;
      p.post_filter_amplification = plan.amplification;
      return view_.index->Search(query, p, out,
                                 stats != nullptr ? &stats->search : nullptr);
    }

    case PlanKind::kVisitFirstIndexScan: {
      if (view_.index == nullptr) {
        return Status::FailedPrecondition("plan requires an index");
      }
      PredicateIdFilter filter(&pred, view_.attrs);
      SearchParams p = params;
      p.filter = &filter;
      p.filter_mode = FilterMode::kVisitFirst;
      return view_.index->Search(query, p, out,
                                 stats != nullptr ? &stats->search : nullptr);
    }

    case PlanKind::kPartitionPruned: {
      if (view_.partitioned == nullptr) {
        return Status::FailedPrecondition("plan requires a partitioned index");
      }
      std::string column;
      AttrValue value;
      if (!pred.AsSingleEquality(&column, &value) ||
          column != view_.partitioned->column() ||
          TypeOf(value) != AttrType::kInt64) {
        return Status::InvalidArgument(
            "partition-pruned plan needs `partition_column = <int>`");
      }
      return view_.partitioned->Search(
          std::get<std::int64_t>(value), query, params, out,
          stats != nullptr ? &stats->search : nullptr);
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace vdb
