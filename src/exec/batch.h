#ifndef VDB_EXEC_BATCH_H_
#define VDB_EXEC_BATCH_H_

#include <vector>

#include "index/hnsw.h"
#include "index/ivf.h"
#include "index/index.h"

namespace vdb {

/// Batched query execution (paper §2.1 "batched queries"; §2.3 notes that
/// "several techniques exploit commonalities between the queries"). Two
/// concrete exploits are implemented:
///   - IVF bucket-major scanning (IvfFlatIndex::BatchSearch);
///   - HNSW shared entry points: queries are greedily ordered by
///     similarity and each one enters layer 0 at the previous query's best
///     hit, skipping the hierarchy descent.
/// `SequentialBatch` is the baseline both are measured against (E6).

/// Baseline: independent searches, one per query row.
Status SequentialBatch(const VectorIndex& index, const FloatMatrix& queries,
                       const SearchParams& params,
                       std::vector<std::vector<Neighbor>>* out,
                       SearchStats* stats = nullptr);

/// Shared-entry batch over an HNSW index. Queries are reordered internally
/// by a greedy nearest-neighbor chain (results are returned in the input
/// order regardless).
Status SharedEntryBatch(const HnswIndex& index, const FloatMatrix& queries,
                        const SearchParams& params,
                        std::vector<std::vector<Neighbor>>* out,
                        SearchStats* stats = nullptr);

}  // namespace vdb

#endif  // VDB_EXEC_BATCH_H_
