#include "exec/partitioned_index.h"

namespace vdb {

Result<std::unique_ptr<AttributePartitionedIndex>>
AttributePartitionedIndex::Build(const FloatMatrix& data,
                                 std::span<const VectorId> ids,
                                 std::span<const std::int64_t> partition_values,
                                 const IndexFactory& factory,
                                 std::string column_name) {
  if (data.rows() != partition_values.size()) {
    return Status::InvalidArgument("partition values must match rows");
  }
  if (!factory) return Status::InvalidArgument("factory is required");

  std::map<std::int64_t, std::pair<FloatMatrix, std::vector<VectorId>>> groups;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    auto& [vectors, group_ids] = groups[partition_values[i]];
    if (vectors.rows() == 0) vectors = FloatMatrix(0, data.cols());
    vectors.AppendRow(data.row(i), data.cols());
    group_ids.push_back(ids.empty() ? static_cast<VectorId>(i) : ids[i]);
  }

  auto index = std::unique_ptr<AttributePartitionedIndex>(
      new AttributePartitionedIndex());
  index->column_ = std::move(column_name);
  for (auto& [value, group] : groups) {
    auto sub = factory();
    if (sub == nullptr) return Status::Internal("factory returned null");
    VDB_RETURN_IF_ERROR(sub->Build(group.first, group.second));
    index->partitions_.emplace(value, std::move(sub));
  }
  return index;
}

Status AttributePartitionedIndex::Search(std::int64_t value,
                                         const float* query,
                                         const SearchParams& params,
                                         std::vector<Neighbor>* out,
                                         SearchStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  out->clear();
  auto it = partitions_.find(value);
  if (it == partitions_.end()) return Status::Ok();  // empty partition
  return it->second->Search(query, params, out, stats);
}

}  // namespace vdb
