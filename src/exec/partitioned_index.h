#ifndef VDB_EXEC_PARTITIONED_INDEX_H_
#define VDB_EXEC_PARTITIONED_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "storage/attribute_store.h"
#include "storage/lsm_store.h"

namespace vdb {

/// Offline blocking (paper §2.3(1): "the vector collection is
/// pre-partitioned along attributes so that at query time, only the
/// relevant partition needs to be searched"). One sub-index per distinct
/// value of a categorical int64 column; equality predicates on that column
/// prune to a single partition.
class AttributePartitionedIndex {
 public:
  /// `factory` builds each partition's index; `partition_values[i]` is the
  /// partition key of row i of `data`.
  static Result<std::unique_ptr<AttributePartitionedIndex>> Build(
      const FloatMatrix& data, std::span<const VectorId> ids,
      std::span<const std::int64_t> partition_values,
      const IndexFactory& factory, std::string column_name);

  const std::string& column() const { return column_; }
  std::size_t num_partitions() const { return partitions_.size(); }

  /// Searches only the partition holding `value`; empty result if no such
  /// partition exists.
  Status Search(std::int64_t value, const float* query,
                const SearchParams& params, std::vector<Neighbor>* out,
                SearchStats* stats = nullptr) const;

 private:
  std::string column_;
  std::map<std::int64_t, std::unique_ptr<VectorIndex>> partitions_;
};

}  // namespace vdb

#endif  // VDB_EXEC_PARTITIONED_INDEX_H_
