#include "exec/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vdb {

std::vector<HybridPlan> EnumeratePlans(const CollectionView& view,
                                       const Predicate& pred) {
  std::vector<HybridPlan> plans;
  plans.push_back({PlanKind::kBruteForceHybrid, 3.0f});
  if (view.index != nullptr) {
    plans.push_back({PlanKind::kPreFilterIndexScan, 3.0f});
    plans.push_back({PlanKind::kPostFilterIndexScan, 3.0f});
    plans.push_back({PlanKind::kVisitFirstIndexScan, 3.0f});
  }
  if (view.partitioned != nullptr) {
    std::string column;
    AttrValue value;
    if (pred.AsSingleEquality(&column, &value) &&
        column == view.partitioned->column() &&
        TypeOf(value) == AttrType::kInt64) {
      plans.push_back({PlanKind::kPartitionPruned, 3.0f});
    }
  }
  return plans;
}

Result<HybridPlan> RuleBasedOptimizer::Choose(const Predicate& pred,
                                              const CollectionView& view,
                                              const SearchParams& params) const {
  (void)params;
  if (view.index == nullptr) {
    return HybridPlan{PlanKind::kBruteForceHybrid, 3.0f};
  }
  VDB_ASSIGN_OR_RETURN(double s, pred.EstimateSelectivity(*view.attrs));
  if (s < opts_.brute_force_below) {
    // Few matches: score them all exactly; no index needed.
    return HybridPlan{PlanKind::kBruteForceHybrid, 3.0f};
  }
  if (s > opts_.post_filter_above) {
    // Filter barely bites: unfiltered scan plus a cheap post-check.
    // Amplification sized to the expected pass rate.
    float amp = static_cast<float>(std::min(10.0, 2.0 / std::max(s, 0.01)));
    return HybridPlan{PlanKind::kPostFilterIndexScan, amp};
  }
  return HybridPlan{PlanKind::kPreFilterIndexScan, 3.0f};
}

double CostBasedOptimizer::EstimateCost(const HybridPlan& plan, double s,
                                        std::size_t n,
                                        const SearchParams& params) const {
  const double nn = static_cast<double>(n);
  const double k = static_cast<double>(params.k);
  const double ef =
      params.ef > 0 ? static_cast<double>(params.ef) : std::max(32.0, k);
  const double eps = 1e-4;
  switch (plan.kind) {
    case PlanKind::kBruteForceHybrid:
      return nn * model_.bitmask_row + s * nn * model_.dist_comp;

    case PlanKind::kPreFilterIndexScan: {
      // Bitmask plus a blocked graph scan; blocking shrinks the reachable
      // set, so expansion work scales with ef but each hop wades through
      // blocked neighbors (1/s retry factor, capped by the collection).
      double scan = std::min(nn, ef * model_.graph_fanout / std::max(s, 0.25));
      return nn * model_.bitmask_row + scan * model_.dist_comp;
    }

    case PlanKind::kPostFilterIndexScan: {
      double a = std::max(1.0f, plan.amplification);
      double scan = std::min(nn, std::max(ef, a * k) * model_.graph_fanout);
      double cost = scan * model_.dist_comp + a * k * model_.filter_check;
      // Expected deficit penalty: fewer than k results is a correctness
      // hazard (§2.6(3)); price each missing slot as a full re-run.
      double expected = std::min(k, a * k * s);
      double deficit = (k - expected) / k;
      return cost * (1.0 + 4.0 * deficit);
    }

    case PlanKind::kVisitFirstIndexScan: {
      // Must traverse ~ef/s nodes to gather ef admissible candidates.
      double visited = std::min(nn, ef * model_.graph_fanout / std::max(s, eps));
      return visited * (model_.dist_comp + model_.filter_check);
    }

    case PlanKind::kPartitionPruned: {
      // Search one partition of expected size s*n with the index.
      double scan = std::min(s * nn, ef * model_.graph_fanout);
      return scan * model_.dist_comp;
    }
  }
  return std::numeric_limits<double>::max();
}

Result<HybridPlan> CostBasedOptimizer::Choose(const Predicate& pred,
                                              const CollectionView& view,
                                              const SearchParams& params) const {
  VDB_ASSIGN_OR_RETURN(double s, pred.EstimateSelectivity(*view.attrs));
  const std::size_t n = view.vectors->live_count();
  auto plans = EnumeratePlans(view, pred);
  double best_cost = std::numeric_limits<double>::max();
  HybridPlan best = plans.front();
  for (auto& plan : plans) {
    if (plan.kind == PlanKind::kPostFilterIndexScan) {
      // Size the amplification so the expected yield covers k (§2.6(3)'s
      // "retrieve a*k" with a = 2/s, clamped).
      plan.amplification =
          static_cast<float>(std::clamp(2.0 / std::max(s, 0.01), 1.0, 50.0));
    }
    double cost = EstimateCost(plan, s, n, params);
    if (cost < best_cost) {
      best_cost = cost;
      best = plan;
    }
  }
  return best;
}

}  // namespace vdb
