#include "exec/predicate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vdb {

struct Predicate::Node {
  Kind kind = Kind::kTrue;
  // kCmp / kIn / kBetween:
  std::string column;
  CmpOp op = CmpOp::kEq;
  std::vector<AttrValue> values;  ///< [v] / IN-list / [lo, hi]
  // kAnd / kOr / kNot:
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

Predicate::Predicate() : node_(std::make_shared<Node>()) {}

Predicate Predicate::Cmp(std::string column, CmpOp op, AttrValue value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kCmp;
  node->column = std::move(column);
  node->op = op;
  node->values = {std::move(value)};
  return Predicate(node);
}

Predicate Predicate::In(std::string column, std::vector<AttrValue> values) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kIn;
  node->column = std::move(column);
  node->values = std::move(values);
  return Predicate(node);
}

Predicate Predicate::Between(std::string column, AttrValue lo, AttrValue hi) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBetween;
  node->column = std::move(column);
  node->values = {std::move(lo), std::move(hi)};
  return Predicate(node);
}

Predicate Predicate::And(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(node);
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = a.node_;
  node->right = b.node_;
  return Predicate(node);
}

Predicate Predicate::Not(Predicate a) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = a.node_;
  return Predicate(node);
}

bool Predicate::IsTrue() const { return node_->kind == Kind::kTrue; }

bool Predicate::AsSingleEquality(std::string* column, AttrValue* value) const {
  if (node_->kind != Kind::kCmp || node_->op != CmpOp::kEq) return false;
  *column = node_->column;
  *value = node_->values[0];
  return true;
}

namespace {

// Three-way comparison of a stored value against a literal; returns
// InvalidArgument on type mismatch.
Result<int> CompareValues(const AttrValue& stored, const AttrValue& literal) {
  if (stored.index() != literal.index()) {
    // int64 vs double comparisons are allowed (numeric promotion).
    const bool numeric =
        stored.index() != 2 && literal.index() != 2;
    if (!numeric) return Status::InvalidArgument("type mismatch in predicate");
    double a = stored.index() == 0
                   ? static_cast<double>(std::get<std::int64_t>(stored))
                   : std::get<double>(stored);
    double b = literal.index() == 0
                   ? static_cast<double>(std::get<std::int64_t>(literal))
                   : std::get<double>(literal);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (TypeOf(stored)) {
    case AttrType::kInt64: {
      auto a = std::get<std::int64_t>(stored), b = std::get<std::int64_t>(literal);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case AttrType::kDouble: {
      auto a = std::get<double>(stored), b = std::get<double>(literal);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case AttrType::kString: {
      const auto& a = std::get<std::string>(stored);
      const auto& b = std::get<std::string>(literal);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
  return Status::Internal("bad attr type");
}

bool ApplyOp(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

double AsDouble(const AttrValue& v) {
  switch (TypeOf(v)) {
    case AttrType::kInt64:
      return static_cast<double>(std::get<std::int64_t>(v));
    case AttrType::kDouble:
      return std::get<double>(v);
    case AttrType::kString:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

Result<bool> Predicate::MatchesRow(const AttributeStore& attrs,
                                   VectorId id) const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      VDB_ASSIGN_OR_RETURN(AttrValue stored, attrs.Get(id, n.column));
      VDB_ASSIGN_OR_RETURN(int cmp, CompareValues(stored, n.values[0]));
      return ApplyOp(n.op, cmp);
    }
    case Kind::kIn: {
      VDB_ASSIGN_OR_RETURN(AttrValue stored, attrs.Get(id, n.column));
      for (const auto& v : n.values) {
        auto cmp = CompareValues(stored, v);
        if (cmp.ok() && *cmp == 0) return true;
      }
      return false;
    }
    case Kind::kBetween: {
      VDB_ASSIGN_OR_RETURN(AttrValue stored, attrs.Get(id, n.column));
      VDB_ASSIGN_OR_RETURN(int lo, CompareValues(stored, n.values[0]));
      VDB_ASSIGN_OR_RETURN(int hi, CompareValues(stored, n.values[1]));
      return lo >= 0 && hi <= 0;
    }
    case Kind::kAnd: {
      VDB_ASSIGN_OR_RETURN(bool a, Predicate(n.left).MatchesRow(attrs, id));
      if (!a) return false;
      return Predicate(n.right).MatchesRow(attrs, id);
    }
    case Kind::kOr: {
      VDB_ASSIGN_OR_RETURN(bool a, Predicate(n.left).MatchesRow(attrs, id));
      if (a) return true;
      return Predicate(n.right).MatchesRow(attrs, id);
    }
    case Kind::kNot: {
      VDB_ASSIGN_OR_RETURN(bool a, Predicate(n.left).MatchesRow(attrs, id));
      return !a;
    }
  }
  return Status::Internal("bad predicate kind");
}

Result<Bitset> Predicate::Evaluate(const AttributeStore& attrs) const {
  const std::size_t n = attrs.NumRows();
  Bitset bits(n);
  // Leaf predicates evaluate column-at-a-time; boolean nodes combine
  // bitsets (the standard vectorized filtering pipeline).
  const Node& node = *node_;
  switch (node.kind) {
    case Kind::kTrue: {
      bits.SetAll();
      return bits;
    }
    case Kind::kAnd: {
      VDB_ASSIGN_OR_RETURN(Bitset a, Predicate(node.left).Evaluate(attrs));
      VDB_ASSIGN_OR_RETURN(Bitset b, Predicate(node.right).Evaluate(attrs));
      a.And(b);
      return a;
    }
    case Kind::kOr: {
      VDB_ASSIGN_OR_RETURN(Bitset a, Predicate(node.left).Evaluate(attrs));
      VDB_ASSIGN_OR_RETURN(Bitset b, Predicate(node.right).Evaluate(attrs));
      a.Or(b);
      return a;
    }
    case Kind::kNot: {
      VDB_ASSIGN_OR_RETURN(Bitset a, Predicate(node.left).Evaluate(attrs));
      a.Not();
      return a;
    }
    default: {
      for (std::size_t row = 0; row < n; ++row) {
        VDB_ASSIGN_OR_RETURN(bool match,
                             MatchesRow(attrs, static_cast<VectorId>(row)));
        if (match) bits.Set(row);
      }
      return bits;
    }
  }
}

Result<double> Predicate::EstimateSelectivity(
    const AttributeStore& attrs) const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kTrue:
      return 1.0;
    case Kind::kAnd: {
      VDB_ASSIGN_OR_RETURN(double a,
                           Predicate(n.left).EstimateSelectivity(attrs));
      VDB_ASSIGN_OR_RETURN(double b,
                           Predicate(n.right).EstimateSelectivity(attrs));
      return a * b;  // independence assumption
    }
    case Kind::kOr: {
      VDB_ASSIGN_OR_RETURN(double a,
                           Predicate(n.left).EstimateSelectivity(attrs));
      VDB_ASSIGN_OR_RETURN(double b,
                           Predicate(n.right).EstimateSelectivity(attrs));
      return a + b - a * b;
    }
    case Kind::kNot: {
      VDB_ASSIGN_OR_RETURN(double a,
                           Predicate(n.left).EstimateSelectivity(attrs));
      return 1.0 - a;
    }
    case Kind::kCmp: {
      VDB_ASSIGN_OR_RETURN(ColumnStats stats, attrs.ComputeStats(n.column));
      double ndv = std::max<double>(1.0, static_cast<double>(stats.approx_distinct));
      if (n.op == CmpOp::kEq) return 1.0 / ndv;
      if (n.op == CmpOp::kNe) return 1.0 - 1.0 / ndv;
      // Range ops via the histogram when numeric.
      if (stats.histogram.empty()) return 0.33;  // string range: guess
      double v = AsDouble(n.values[0]);
      double total = 0.0, below = 0.0;
      double width = (stats.max - stats.min) / 16.0;
      for (std::size_t b = 0; b < stats.histogram.size(); ++b) {
        total += static_cast<double>(stats.histogram[b]);
        double bucket_hi = stats.min + width * static_cast<double>(b + 1);
        if (bucket_hi <= v) {
          below += static_cast<double>(stats.histogram[b]);
        } else if (bucket_hi - width < v && width > 0.0) {
          below += static_cast<double>(stats.histogram[b]) *
                   (v - (bucket_hi - width)) / width;
        }
      }
      double frac_below = total > 0.0 ? below / total : 0.5;
      switch (n.op) {
        case CmpOp::kLt:
        case CmpOp::kLe:
          return std::clamp(frac_below, 0.0, 1.0);
        case CmpOp::kGt:
        case CmpOp::kGe:
          return std::clamp(1.0 - frac_below, 0.0, 1.0);
        default:
          return 0.33;
      }
    }
    case Kind::kIn: {
      VDB_ASSIGN_OR_RETURN(ColumnStats stats, attrs.ComputeStats(n.column));
      double ndv = std::max<double>(1.0, static_cast<double>(stats.approx_distinct));
      return std::min(1.0, static_cast<double>(n.values.size()) / ndv);
    }
    case Kind::kBetween: {
      Predicate range =
          Predicate::And(Predicate::Cmp(n.column, CmpOp::kGe, n.values[0]),
                         Predicate::Cmp(n.column, CmpOp::kLe, n.values[1]));
      // Avoid the independence penalty: lo/hi on the same column are
      // perfectly correlated, so estimate as (frac <= hi) - (frac < lo).
      VDB_ASSIGN_OR_RETURN(
          double below_hi,
          Predicate::Cmp(n.column, CmpOp::kLe, n.values[1])
              .EstimateSelectivity(attrs));
      VDB_ASSIGN_OR_RETURN(
          double below_lo,
          Predicate::Cmp(n.column, CmpOp::kLt, n.values[0])
              .EstimateSelectivity(attrs));
      (void)range;
      return std::clamp(below_hi - below_lo, 0.0, 1.0);
    }
  }
  return Status::Internal("bad predicate kind");
}

namespace {

std::string ValueToString(const AttrValue& v) {
  switch (TypeOf(v)) {
    case AttrType::kInt64: return std::to_string(std::get<std::int64_t>(v));
    case AttrType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(v);
      return os.str();
    }
    case AttrType::kString: return "'" + std::get<std::string>(v) + "'";
  }
  return "?";
}

std::string OpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace

std::string Predicate::ToString() const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCmp:
      return n.column + " " + OpToString(n.op) + " " +
             ValueToString(n.values[0]);
    case Kind::kIn: {
      std::string out = n.column + " IN (";
      for (std::size_t i = 0; i < n.values.size(); ++i) {
        if (i) out += ", ";
        out += ValueToString(n.values[i]);
      }
      return out + ")";
    }
    case Kind::kBetween:
      return n.column + " BETWEEN " + ValueToString(n.values[0]) + " AND " +
             ValueToString(n.values[1]);
    case Kind::kAnd:
      return "(" + Predicate(n.left).ToString() + " AND " +
             Predicate(n.right).ToString() + ")";
    case Kind::kOr:
      return "(" + Predicate(n.left).ToString() + " OR " +
             Predicate(n.right).ToString() + ")";
    case Kind::kNot:
      return "NOT (" + Predicate(n.left).ToString() + ")";
  }
  return "?";
}

}  // namespace vdb
