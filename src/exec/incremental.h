#ifndef VDB_EXEC_INCREMENTAL_H_
#define VDB_EXEC_INCREMENTAL_H_

#include <unordered_set>
#include <vector>

#include "index/index.h"

namespace vdb {

/// Incremental k-NN search (paper §2.6(5): "applications such as
/// e-commerce rely on incremental search, where the result set is
/// seamlessly fetched in parts ... it is unclear how to support this
/// within vector indexes").
///
/// Strategy implemented here: escalating-effort re-query. The stream keeps
/// a cursor over an internally maintained result prefix; when the consumer
/// outruns it, the underlying index is re-queried with a doubled k (and
/// proportionally raised ef) and the fresh, strictly-larger prefix
/// replaces the buffer. Already-emitted ids stay stable: results are
/// emitted in first-seen order and never retracted, so consumers can
/// paginate without deduplicating.
///
/// Exactness matches the underlying index per page: on FlatIndex the
/// stream is the exact distance-ordered enumeration of the collection.
class IncrementalSearch {
 public:
  /// `base` supplies the filter and family knobs; `base.k`/`base.ef` are
  /// managed by the stream.
  IncrementalSearch(const VectorIndex* index, std::vector<float> query,
                    SearchParams base = {})
      : index_(index), query_(std::move(query)), base_(base) {}

  /// Appends up to `count` further neighbors to `out` (fewer only when
  /// the collection is exhausted under the active filter).
  Status Next(std::size_t count, std::vector<Neighbor>* out,
              SearchStats* stats = nullptr) {
    if (out == nullptr) return Status::InvalidArgument("out must not be null");
    out->clear();
    while (out->size() < count) {
      if (cursor_ == buffer_.size()) {
        if (exhausted_) break;
        VDB_RETURN_IF_ERROR(Refill(cursor_ + (count - out->size()), stats));
        if (cursor_ == buffer_.size()) break;
      }
      out->push_back(buffer_[cursor_++]);
    }
    return Status::Ok();
  }

  /// Total neighbors emitted so far.
  std::size_t fetched() const { return cursor_; }

 private:
  Status Refill(std::size_t needed, SearchStats* stats) {
    std::size_t target = std::max<std::size_t>(needed, 16);
    while (true) {
      SearchParams params = base_;
      params.k = target;
      // Keep the beam at least as wide as the ask so graph indexes keep
      // their accuracy as the stream deepens.
      params.ef = std::max<int>(base_.ef, static_cast<int>(2 * target));
      std::vector<Neighbor> fresh;
      VDB_RETURN_IF_ERROR(index_->Search(query_.data(), params, &fresh, stats));
      MergeFresh(fresh);
      if (fresh.size() < target) {
        exhausted_ = true;  // the index has no more admissible results
        return Status::Ok();
      }
      if (buffer_.size() >= needed) return Status::Ok();
      target *= 2;
    }
  }

  /// Appends results not yet in the buffer, preserving emitted order.
  void MergeFresh(const std::vector<Neighbor>& fresh) {
    for (const auto& nb : fresh) {
      if (in_buffer_.insert(nb.id).second) buffer_.push_back(nb);
    }
  }

  const VectorIndex* index_;
  std::vector<float> query_;
  SearchParams base_;
  std::vector<Neighbor> buffer_;
  std::unordered_set<VectorId> in_buffer_;
  std::size_t cursor_ = 0;
  bool exhausted_ = false;
};

}  // namespace vdb

#endif  // VDB_EXEC_INCREMENTAL_H_
