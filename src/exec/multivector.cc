#include "exec/multivector.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/topk.h"

namespace vdb {

float MultiVectorSearcher::Score(const FloatMatrix& query_vectors,
                                 const Aggregator& agg, VectorId entity,
                                 SearchStats* stats) const {
  std::vector<VectorView> entity_vectors = vectors_of_(entity);
  if (entity_vectors.empty()) return std::numeric_limits<float>::infinity();
  std::vector<float> per_query(query_vectors.rows());
  for (std::size_t qv = 0; qv < query_vectors.rows(); ++qv) {
    float best = std::numeric_limits<float>::max();
    for (const auto& ev : entity_vectors) {
      float d = scorer_->Distance(query_vectors.row(qv), ev.data());
      if (stats != nullptr) ++stats->distance_comps;
      best = std::min(best, d);
    }
    per_query[qv] = best;
  }
  return agg.Combine(per_query);
}

Status MultiVectorSearcher::Search(const FloatMatrix& query_vectors,
                                   const Aggregator& agg, std::size_t k,
                                   const SearchParams& params,
                                   std::vector<Neighbor>* out,
                                   SearchStats* stats,
                                   std::size_t candidate_factor) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  if (query_vectors.empty()) {
    return Status::InvalidArgument("no query vectors");
  }
  // Stage 1: per-query-vector candidate generation through the index.
  std::unordered_set<VectorId> entities;
  SearchParams inner = params;
  inner.k = std::max<std::size_t>(k * candidate_factor, k);
  for (std::size_t qv = 0; qv < query_vectors.rows(); ++qv) {
    std::vector<Neighbor> hits;
    VDB_RETURN_IF_ERROR(
        index_->Search(query_vectors.row(qv), inner, &hits, stats));
    for (const auto& h : hits) entities.insert(entity_of_(h.id));
  }
  // Stage 2: exact aggregate re-scoring of the candidate entities.
  TopK top(k);
  for (VectorId entity : entities) {
    top.Push(entity, Score(query_vectors, agg, entity, stats));
  }
  *out = top.Take();
  return Status::Ok();
}

Status MultiVectorSearcher::Exact(const FloatMatrix& query_vectors,
                                  const Aggregator& agg,
                                  std::span<const VectorId> entities,
                                  std::size_t k, std::vector<Neighbor>* out,
                                  SearchStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  TopK top(k);
  for (VectorId entity : entities) {
    top.Push(entity, Score(query_vectors, agg, entity, stats));
  }
  *out = top.Take();
  return Status::Ok();
}

}  // namespace vdb
