#ifndef VDB_EXEC_TRACE_H_
#define VDB_EXEC_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace vdb {

/// One timed stage of a query pipeline. Spans form a tree via `depth`
/// (children are the spans begun while a parent is open); render order is
/// begin order, which is also execution order for our single-threaded
/// per-query pipelines.
struct TraceSpan {
  std::string name;
  int depth = 0;
  std::uint64_t start_ns = 0;  ///< relative to the trace epoch
  std::uint64_t dur_ns = 0;    ///< 0 while the span is open
  bool open = true;

  /// Optional per-span cost annotation (the SearchStats the stage
  /// accumulated), plus free-form key=value notes (chosen plan, row
  /// counts, selectivity estimates).
  SearchStats stats;
  bool has_stats = false;
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Per-query trace: records timed spans for each pipeline stage
/// (parse -> plan -> per-index search -> rerank -> filter -> gather).
/// Not thread-safe — one trace belongs to one query on one thread; the
/// distributed scatter path strips the trace from worker params and
/// annotates a single scatter_gather span instead.
class QueryTrace {
 public:
  QueryTrace();

  /// Opens a span nested under the innermost open span.
  std::size_t BeginSpan(std::string name);
  void EndSpan(std::size_t id);

  void Note(std::size_t id, std::string key, std::string value);
  /// Accumulates `stats` into the span's cost annotation.
  void RecordStats(std::size_t id, const SearchStats& stats);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// Wall time of the root span (or epoch->now while still open).
  double TotalMillis() const;

  /// Human-readable indented span tree with per-stage wall times, stats,
  /// and notes — the body of EXPLAIN ANALYZE and the slow-query log.
  std::string Render() const;

  /// Compact one-line per-stage latency attribution for wire transport
  /// and the flight recorder: "parse=0.004ms plan=0.040ms
  /// index_search:hnsw=0.006ms". Top-level child spans only (depth 1 —
  /// the pipeline stages under the root query span); root-only traces
  /// fall back to the root.
  std::string StageSummary() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  std::vector<std::size_t> stack_;  ///< open span ids, innermost last
};

/// RAII span: no-op when `trace` is null, so call sites need no branches.
class TraceScope {
 public:
  TraceScope(QueryTrace* trace, std::string name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(std::move(name));
  }
  ~TraceScope() { End(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }
  void RecordStats(const SearchStats& stats) {
    if (trace_ != nullptr) trace_->RecordStats(id_, stats);
  }
  void Note(std::string key, std::string value) {
    if (trace_ != nullptr) trace_->Note(id_, std::move(key), std::move(value));
  }

 private:
  QueryTrace* trace_;
  std::size_t id_ = 0;
};

// ------------------------------------------------------- slow-query log
//
// Queries slower than the threshold get their full span tree logged.
// Threshold comes from env `VDB_SLOW_QUERY_MS` (unset/negative disables);
// the setters below override it programmatically (tests, operators).

/// Overrides the slow-query threshold; ms < 0 disables logging.
void SetSlowQueryThresholdMs(double ms);
/// Replaces the stderr sink (null restores stderr). For tests.
void SetSlowQuerySink(void (*sink)(const std::string&));
/// Logs `trace` (annotated with `query_text`) if it exceeded the
/// threshold; increments `vdb_slow_queries_total` when it does.
void MaybeLogSlowQuery(const QueryTrace& trace, const std::string& query_text);

}  // namespace vdb

#endif  // VDB_EXEC_TRACE_H_
