#include "exec/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "core/telemetry.h"

namespace vdb {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Full JSON string escaping — traces contain newlines and query text is
/// user-controlled, so this must handle every control character.
std::string EscapeJson(const std::string& s) {
  std::string e;
  e.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': e += "\\\""; break;
      case '\\': e += "\\\\"; break;
      case '\n': e += "\\n"; break;
      case '\r': e += "\\r"; break;
      case '\t': e += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          e += buf;
        } else {
          e.push_back(static_cast<char>(c));
        }
    }
  }
  return e;
}

Counter& RecordsCounter() {
  static Counter& c = Registry::Global().GetCounter("vdb_flight_records_total");
  return c;
}

Gauge& OccupancyGauge() {
  static Gauge& g = Registry::Global().GetGauge("vdb_flight_occupancy");
  return g;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::uint64_t stale_horizon)
    : capacity_(capacity == 0 ? 1 : capacity), stale_horizon_(stale_horizon) {
  entries_.reserve(capacity_);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance =
      new FlightRecorder();  // leaked: process lifetime, like Registry
  return *instance;
}

bool FlightRecorder::Worse(const FlightRecord& a, const FlightRecord& b) {
  if (a.failed != b.failed) return a.failed;
  return a.total_ms > b.total_ms;
}

std::uint64_t FlightRecorder::NoteCompletion(bool failed, double total_ms) {
  MutexLock lock(mu_);
  ++completions_;
  // Age out first so board-worthiness is judged against a fresh board.
  // The guarded reads are hoisted out of the predicate: TSA analyzes a
  // lambda as a separate function with no view of this hold.
  const std::uint64_t stale_before =
      completions_ > stale_horizon_ ? completions_ - stale_horizon_ : 0;
  std::erase_if(entries_, [stale_before](const FlightRecord& e) {
    return e.seq < stale_before;
  });
  OccupancyGauge().Set(static_cast<std::int64_t>(entries_.size()));
  if (entries_.size() < capacity_) return completions_;
  FlightRecord candidate;
  candidate.failed = failed;
  candidate.total_ms = total_ms;
  const FlightRecord* least = &entries_.front();
  for (const FlightRecord& e : entries_) {
    if (!Worse(e, *least)) least = &e;
  }
  return Worse(candidate, *least) ? completions_ : 0;
}

void FlightRecorder::Record(FlightRecord record) {
  if (record.query.size() > kMaxQueryBytes) {
    record.query.resize(kMaxQueryBytes);
    record.query += "...";
  }
  MutexLock lock(mu_);
  const std::uint64_t stale_before =
      completions_ > stale_horizon_ ? completions_ - stale_horizon_ : 0;
  std::erase_if(entries_, [stale_before](const FlightRecord& e) {
    return e.seq < stale_before;
  });
  if (entries_.size() >= capacity_) {
    // Replace the least-bad entry — re-checked under the lock because
    // the board may have changed since NoteCompletion admitted us.
    auto least = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!Worse(*it, *least)) least = it;
    }
    if (!Worse(record, *least)) {
      OccupancyGauge().Set(static_cast<std::int64_t>(entries_.size()));
      return;
    }
    *least = std::move(record);
  } else {
    entries_.push_back(std::move(record));
  }
  RecordsCounter().Inc();
  OccupancyGauge().Set(static_cast<std::int64_t>(entries_.size()));
}

std::vector<FlightRecord> FlightRecorder::WorstFirst() const {
  std::vector<FlightRecord> out;
  {
    MutexLock lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const FlightRecord& a,
                                       const FlightRecord& b) {
    if (a.failed != b.failed || a.total_ms != b.total_ms) return Worse(a, b);
    return a.seq > b.seq;  // tie-break: newer first, deterministic
  });
  return out;
}

std::string FlightRecorder::RenderJson() const {
  std::vector<FlightRecord> worst = WorstFirst();
  std::string out = "[";
  bool first = true;
  for (const FlightRecord& r : worst) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(r.seq);
    out += ",\"query\":\"" + EscapeJson(r.query) + "\"";
    out += ",\"tenant\":\"" + EscapeJson(r.tenant) + "\"";
    out += ",\"verdict\":\"" + EscapeJson(r.verdict) + "\"";
    out += ",\"failed\":";
    out += r.failed ? "true" : "false";
    out += ",\"total_ms\":" + FormatDouble(r.total_ms);
    out += ",\"deadline_slack_ms\":";
    out += r.has_deadline ? FormatDouble(r.deadline_slack_ms) : "null";
    out += ",\"stages\":\"" + EscapeJson(r.stages) + "\"";
    out += ",\"trace\":\"" + EscapeJson(r.trace) + "\"}";
  }
  out += "]";
  return out;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  completions_ = 0;
  OccupancyGauge().Set(0);
}

}  // namespace vdb
