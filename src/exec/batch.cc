#include "exec/batch.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/simd.h"

namespace vdb {

Status SequentialBatch(const VectorIndex& index, const FloatMatrix& queries,
                       const SearchParams& params,
                       std::vector<std::vector<Neighbor>>* out,
                       SearchStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  out->resize(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    VDB_RETURN_IF_ERROR(index.Search(queries.row(q), params, &(*out)[q], stats));
  }
  return Status::Ok();
}

Status SharedEntryBatch(const HnswIndex& index, const FloatMatrix& queries,
                        const SearchParams& params,
                        std::vector<std::vector<Neighbor>>* out,
                        SearchStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("out must not be null");
  const std::size_t nq = queries.rows();
  out->assign(nq, {});
  if (nq == 0) return Status::Ok();

  // Greedy nearest-neighbor chain over the query set: start anywhere, then
  // repeatedly jump to the unprocessed query closest to the current one.
  // O(nq^2) on the (small) batch, paid once to maximize entry-hint reuse.
  const std::size_t dim = queries.cols();
  std::vector<std::size_t> order;
  order.reserve(nq);
  std::vector<bool> used(nq, false);
  std::size_t current = 0;
  used[0] = true;
  order.push_back(0);
  for (std::size_t step = 1; step < nq; ++step) {
    double best = std::numeric_limits<double>::max();
    std::size_t arg = 0;
    for (std::size_t q = 0; q < nq; ++q) {
      if (used[q]) continue;
      double d = simd::L2Sq(queries.row(current), queries.row(q), dim);
      if (d < best) {
        best = d;
        arg = q;
      }
    }
    used[arg] = true;
    order.push_back(arg);
    current = arg;
  }

  // First query pays the full hierarchical search; each subsequent one
  // enters at the previous result's nearest hit.
  VectorId hint = kInvalidVectorId;
  for (std::size_t pos = 0; pos < nq; ++pos) {
    std::size_t q = order[pos];
    Status status;
    if (hint == kInvalidVectorId) {
      status = index.Search(queries.row(q), params, &(*out)[q], stats);
    } else {
      status = index.SearchWithEntryHint(queries.row(q), hint, params,
                                         &(*out)[q], stats);
      if (!status.ok()) {
        // Hint vanished (e.g., deleted): fall back to a full search.
        status = index.Search(queries.row(q), params, &(*out)[q], stats);
      }
    }
    VDB_RETURN_IF_ERROR(status);
    if (!(*out)[q].empty()) hint = (*out)[q].front().id;
  }
  return Status::Ok();
}

}  // namespace vdb
