#ifndef VDB_EXEC_PREDICATE_H_
#define VDB_EXEC_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "index/index.h"
#include "storage/attribute_store.h"

namespace vdb {

/// Comparison operators over attribute values.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Boolean predicate tree over structured attributes — the filter half of
/// a hybrid query (§2.1 "Query Variants"). Supports bitmask evaluation
/// (block-first filtering), per-row checks (visit-first / post-filter),
/// and statistics-based selectivity estimation (plan selection, §2.3).
class Predicate {
 public:
  /// The always-true predicate (selectivity 1; hybrid degenerates to k-NN).
  Predicate();

  static Predicate True() { return Predicate(); }
  static Predicate Cmp(std::string column, CmpOp op, AttrValue value);
  static Predicate In(std::string column, std::vector<AttrValue> values);
  static Predicate Between(std::string column, AttrValue lo, AttrValue hi);
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate a);

  bool IsTrue() const;

  /// Evaluates to a bitmask over rows [0, attrs.NumRows()) — the
  /// block-first technique of Milvus/AnalyticDB-V.
  Result<Bitset> Evaluate(const AttributeStore& attrs) const;

  /// Per-row check (single-stage / post-filter path).
  Result<bool> MatchesRow(const AttributeStore& attrs, VectorId id) const;

  /// Estimated fraction of rows matching, from column statistics:
  /// equality via distinct counts, ranges via equi-width histograms,
  /// conjunction/disjunction under independence.
  Result<double> EstimateSelectivity(const AttributeStore& attrs) const;

  std::string ToString() const;

  /// If this predicate is exactly `column = value`, fills the outputs and
  /// returns true (the shape offline attribute partitioning can serve).
  bool AsSingleEquality(std::string* column, AttrValue* value) const;

 private:
  enum class Kind { kTrue, kCmp, kIn, kBetween, kAnd, kOr, kNot };

  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Adapts a Predicate to the index-facing IdFilter interface, evaluating
/// per row on demand (the visit-first operator's probe).
class PredicateIdFilter final : public IdFilter {
 public:
  PredicateIdFilter(const Predicate* pred, const AttributeStore* attrs)
      : pred_(pred), attrs_(attrs) {}
  bool Matches(VectorId id) const override {
    auto result = pred_->MatchesRow(*attrs_, id);
    return result.ok() && *result;
  }

 private:
  const Predicate* pred_;
  const AttributeStore* attrs_;
};

}  // namespace vdb

#endif  // VDB_EXEC_PREDICATE_H_
