#ifndef VDB_EXEC_MULTIVECTOR_H_
#define VDB_EXEC_MULTIVECTOR_H_

#include <functional>
#include <vector>

#include "core/aggregate.h"
#include "core/distance.h"
#include "index/index.h"

namespace vdb {

/// Multi-vector queries (paper §2.1 "Query Variants", §2.6(6)): the query
/// and/or each entity is represented by several feature vectors; entity
/// scores are aggregate scores over the pairwise distances.
///
/// Semantics implemented here: for query vector q_i, the per-query-vector
/// score of entity e is min over e's vectors of dist(q_i, v) (best-match
/// semantics, the multi-vector retrieval standard); the per-entity score
/// aggregates those per-query-vector scores with the chosen Aggregator.
class MultiVectorSearcher {
 public:
  /// Maps a vector label (as stored in the index) to its owning entity.
  using EntityOf = std::function<VectorId(VectorId)>;
  /// All vectors of an entity.
  using VectorsOf = std::function<std::vector<VectorView>(VectorId)>;

  MultiVectorSearcher(const VectorIndex* index, const Scorer* scorer,
                      EntityOf entity_of, VectorsOf vectors_of)
      : index_(index),
        scorer_(scorer),
        entity_of_(std::move(entity_of)),
        vectors_of_(std::move(vectors_of)) {}

  /// Approximate search: each query vector retrieves
  /// `candidate_factor * k` vectors from the index; the union of owning
  /// entities is re-scored exactly with the aggregate. Results are
  /// (entity id, aggregate distance), ascending.
  Status Search(const FloatMatrix& query_vectors, const Aggregator& agg,
                std::size_t k, const SearchParams& params,
                std::vector<Neighbor>* out, SearchStats* stats = nullptr,
                std::size_t candidate_factor = 4) const;

  /// Exact oracle: aggregate-scores every entity in `entities`.
  Status Exact(const FloatMatrix& query_vectors, const Aggregator& agg,
               std::span<const VectorId> entities, std::size_t k,
               std::vector<Neighbor>* out, SearchStats* stats = nullptr) const;

  /// Aggregate distance of one entity against the query vectors.
  float Score(const FloatMatrix& query_vectors, const Aggregator& agg,
              VectorId entity, SearchStats* stats = nullptr) const;

 private:
  const VectorIndex* index_;
  const Scorer* scorer_;
  EntityOf entity_of_;
  VectorsOf vectors_of_;
};

}  // namespace vdb

#endif  // VDB_EXEC_MULTIVECTOR_H_
