#ifndef VDB_EXEC_OPTIMIZER_H_
#define VDB_EXEC_OPTIMIZER_H_

#include <vector>

#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/predicate.h"

namespace vdb {

/// Enumerates the physically executable plans for a predicated query
/// against `view` (paper §2.3 "Plan Enumeration": index availability
/// determines the space, AnalyticDB-V style).
std::vector<HybridPlan> EnumeratePlans(const CollectionView& view,
                                       const Predicate& pred);

/// Plan selection interface (paper §2.3 "Plan Selection").
class PlanOptimizer {
 public:
  virtual ~PlanOptimizer() = default;
  virtual Result<HybridPlan> Choose(const Predicate& pred,
                                    const CollectionView& view,
                                    const SearchParams& params) const = 0;
};

/// Rule-based selection on selectivity thresholds (the Qdrant/Vespa
/// heuristic): very selective predicates brute-force the matching rows;
/// permissive predicates post-filter; the middle band pre-filters through
/// the index.
struct RuleBasedOptions {
  double brute_force_below = 0.02;  ///< s < this: scan matches exactly
  double post_filter_above = 0.50;  ///< s > this: filter barely bites
};

class RuleBasedOptimizer final : public PlanOptimizer {
 public:
  explicit RuleBasedOptimizer(const RuleBasedOptions& opts = {})
      : opts_(opts) {}
  Result<HybridPlan> Choose(const Predicate& pred, const CollectionView& view,
                            const SearchParams& params) const override;

 private:
  RuleBasedOptions opts_;
};

/// Abstract per-operator costs aggregated linearly into a plan cost (the
/// AnalyticDB-V / Milvus linear cost model). Units are arbitrary but
/// consistent; defaults approximate one float32 distance evaluation = 1.
struct CostModel {
  double dist_comp = 1.0;        ///< one full-precision distance
  double bitmask_row = 0.02;     ///< one row of bitmask construction
  double filter_check = 0.05;    ///< one per-row predicate probe
  /// Distance evaluations per unit of graph beam width (ef): covers
  /// neighbor expansion fan-out. Calibrated empirically for HNSW-like
  /// graphs (ndis ~ ef * fanout).
  double graph_fanout = 8.0;
};

class CostBasedOptimizer final : public PlanOptimizer {
 public:
  explicit CostBasedOptimizer(const CostModel& model = {}) : model_(model) {}

  Result<HybridPlan> Choose(const Predicate& pred, const CollectionView& view,
                            const SearchParams& params) const override;

  /// Estimated cost of one plan at selectivity `s` over `n` rows; exposed
  /// for tests and the E5 benchmark. Plans expected to return fewer than k
  /// results are penalized by the deficit.
  double EstimateCost(const HybridPlan& plan, double s, std::size_t n,
                      const SearchParams& params) const;

 private:
  CostModel model_;
};

}  // namespace vdb

#endif  // VDB_EXEC_OPTIMIZER_H_
