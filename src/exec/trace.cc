#include "exec/trace.h"

#include <cstdio>
#include <cstdlib>

#include "core/telemetry.h"

namespace vdb {

namespace {

std::uint64_t NsSince(std::chrono::steady_clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Appends "key=value" fragments for every nonzero SearchStats field.
void AppendStats(const SearchStats& s, std::string* out) {
  bool first = true;
  auto field = [&](const char* key, std::uint64_t v) {
    if (v == 0) return;
    if (!first) *out += " ";
    first = false;
    *out += key;
    *out += "=";
    *out += std::to_string(v);
  };
  field("dist", s.distance_comps);
  field("code", s.code_comps);
  field("nodes", s.nodes_visited);
  field("hops", s.hops);
  field("io", s.io_reads);
  field("filt", s.filter_checks);
  field("shards_failed", s.shards_failed);
  field("retries", s.shard_retries);
  if (s.partial) {
    if (!first) *out += " ";
    first = false;
    *out += "partial=1";
  }
}

}  // namespace

QueryTrace::QueryTrace() : epoch_(std::chrono::steady_clock::now()) {
  spans_.reserve(16);
}

std::size_t QueryTrace::BeginSpan(std::string name) {
  TraceSpan span;
  span.name = std::move(name);
  span.depth = static_cast<int>(stack_.size());
  span.start_ns = NsSince(epoch_);
  std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  return id;
}

void QueryTrace::EndSpan(std::size_t id) {
  if (id >= spans_.size() || !spans_[id].open) return;
  TraceSpan& span = spans_[id];
  span.dur_ns = NsSince(epoch_) - span.start_ns;
  span.open = false;
  // Close any children the caller forgot (exception paths): pop down to
  // and including this id.
  while (!stack_.empty()) {
    std::size_t top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
    if (spans_[top].open) {
      spans_[top].dur_ns = NsSince(epoch_) - spans_[top].start_ns;
      spans_[top].open = false;
    }
  }
}

void QueryTrace::Note(std::size_t id, std::string key, std::string value) {
  if (id >= spans_.size()) return;
  spans_[id].notes.emplace_back(std::move(key), std::move(value));
}

void QueryTrace::RecordStats(std::size_t id, const SearchStats& stats) {
  if (id >= spans_.size()) return;
  spans_[id].stats += stats;
  spans_[id].has_stats = true;
}

double QueryTrace::TotalMillis() const {
  if (spans_.empty()) return 0.0;
  const TraceSpan& root = spans_.front();
  std::uint64_t dur = root.open ? NsSince(epoch_) - root.start_ns : root.dur_ns;
  return static_cast<double>(dur) / 1e6;
}

std::string QueryTrace::Render() const {
  std::string out;
  char buf[64];
  for (const TraceSpan& span : spans_) {
    for (int i = 0; i < span.depth; ++i) out += "  ";
    out += span.name;
    std::uint64_t dur =
        span.open ? NsSince(epoch_) - span.start_ns : span.dur_ns;
    std::snprintf(buf, sizeof(buf), "  %.3f ms", static_cast<double>(dur) / 1e6);
    out += buf;
    if (span.has_stats) {
      out += "  [";
      AppendStats(span.stats, &out);
      out += "]";
    }
    for (const auto& [key, value] : span.notes) {
      out += "  ";
      out += key;
      out += "=";
      out += value;
    }
    out += "\n";
  }
  return out;
}

std::string QueryTrace::StageSummary() const {
  std::string out;
  char buf[64];
  auto append = [&](const TraceSpan& span) {
    if (!out.empty()) out += " ";
    out += span.name;
    std::uint64_t dur =
        span.open ? NsSince(epoch_) - span.start_ns : span.dur_ns;
    std::snprintf(buf, sizeof(buf), "=%.3fms",
                  static_cast<double>(dur) / 1e6);
    out += buf;
  };
  for (const TraceSpan& span : spans_) {
    if (span.depth == 1) append(span);
  }
  if (out.empty() && !spans_.empty()) append(spans_.front());
  return out;
}

// ------------------------------------------------------- slow-query log

namespace {

// -2 = uninitialized (read env lazily); < 0 after init = disabled.
std::atomic<double> g_slow_query_ms{-2.0};
std::atomic<void (*)(const std::string&)> g_slow_query_sink{nullptr};

double SlowQueryThresholdMs() {
  double ms = g_slow_query_ms.load(std::memory_order_relaxed);
  if (ms != -2.0) return ms;
  const char* env = std::getenv("VDB_SLOW_QUERY_MS");
  ms = (env != nullptr && *env != '\0') ? std::atof(env) : -1.0;
  g_slow_query_ms.store(ms, std::memory_order_relaxed);
  return ms;
}

}  // namespace

void SetSlowQueryThresholdMs(double ms) {
  g_slow_query_ms.store(ms < 0 ? -1.0 : ms, std::memory_order_relaxed);
}

void SetSlowQuerySink(void (*sink)(const std::string&)) {
  g_slow_query_sink.store(sink, std::memory_order_relaxed);
}

void MaybeLogSlowQuery(const QueryTrace& trace, const std::string& query_text) {
  double threshold = SlowQueryThresholdMs();
  if (threshold < 0) return;
  double total = trace.TotalMillis();
  if (total < threshold) return;
  static Counter& slow_queries =
      Registry::Global().GetCounter("vdb_slow_queries_total");
  slow_queries.Inc();
  char head[160];
  std::snprintf(head, sizeof(head),
                "[slow-query] %.3f ms (threshold %.3f ms): ", total, threshold);
  std::string msg = head;
  msg += query_text;
  msg += "\n";
  msg += trace.Render();
  if (auto* sink = g_slow_query_sink.load(std::memory_order_relaxed)) {
    sink(msg);
  } else {
    std::fwrite(msg.data(), 1, msg.size(), stderr);
  }
}

}  // namespace vdb
