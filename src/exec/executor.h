#ifndef VDB_EXEC_EXECUTOR_H_
#define VDB_EXEC_EXECUTOR_H_

#include <vector>

#include "core/distance.h"
#include "exec/partitioned_index.h"
#include "exec/plan.h"
#include "exec/predicate.h"
#include "index/index.h"
#include "storage/attribute_store.h"
#include "storage/vector_store.h"

namespace vdb {

/// Read-only handles to everything a hybrid plan may touch. Null members
/// simply remove the corresponding plans from the search space.
struct CollectionView {
  const VectorStore* vectors = nullptr;       ///< required
  const AttributeStore* attrs = nullptr;      ///< required for predicates
  const VectorIndex* index = nullptr;         ///< enables index plans
  const AttributePartitionedIndex* partitioned = nullptr;  ///< offline blocking
  const Scorer* scorer = nullptr;             ///< required
};

/// Executes a chosen hybrid plan against a collection snapshot — the
/// "Query Executor" box of Figure 1 specialized to predicated k-NN.
class HybridExecutor {
 public:
  explicit HybridExecutor(const CollectionView& view) : view_(view) {}

  /// Runs `plan` for `query` under `pred`. `params.filter/filter_mode` are
  /// overwritten by the plan's strategy.
  Status Execute(const HybridPlan& plan, const Predicate& pred,
                 const float* query, const SearchParams& params,
                 std::vector<Neighbor>* out, ExecStats* stats = nullptr) const;

 private:
  Status BruteForce(const Predicate& pred, const float* query,
                    const SearchParams& params, std::vector<Neighbor>* out,
                    ExecStats* stats) const;

  CollectionView view_;
};

}  // namespace vdb

#endif  // VDB_EXEC_EXECUTOR_H_
