#ifndef VDB_EXEC_PLAN_H_
#define VDB_EXEC_PLAN_H_

#include <string>

#include "core/types.h"

namespace vdb {

/// Physical hybrid-query plans (paper §2.3 "Plan Enumeration"): the four
/// AnalyticDB-V-style strategies plus offline attribute partitioning.
enum class PlanKind {
  /// Fused scan: build the bitmask, brute-force only matching rows.
  /// Exact; optimal at low selectivity or tiny collections.
  kBruteForceHybrid,
  /// Pre-filtering (block-first): bitmask, then a blocked index scan.
  kPreFilterIndexScan,
  /// Post-filtering: unfiltered index scan of a*k, filter afterwards.
  /// May return fewer than k results (the §2.6(3) deficit).
  kPostFilterIndexScan,
  /// Single-stage (visit-first): predicate probed during index traversal.
  kVisitFirstIndexScan,
  /// Offline blocking: per-attribute-value sub-indexes; only the matching
  /// partition is searched (Milvus-style pre-partitioning).
  kPartitionPruned,
};

struct HybridPlan {
  PlanKind kind = PlanKind::kBruteForceHybrid;
  /// Post-filter amplification `a` (retrieve a*k before filtering).
  float amplification = 3.0f;

  std::string ToString() const {
    switch (kind) {
      case PlanKind::kBruteForceHybrid: return "brute-force";
      case PlanKind::kPreFilterIndexScan: return "pre-filter";
      case PlanKind::kPostFilterIndexScan:
        return "post-filter(a=" + std::to_string(amplification) + ")";
      case PlanKind::kVisitFirstIndexScan: return "visit-first";
      case PlanKind::kPartitionPruned: return "partition-pruned";
    }
    return "?";
  }
};

/// Executor-level instrumentation: the operator costs the paper's cost
/// models aggregate (§2.3 "Cost Based").
struct ExecStats {
  SearchStats search;
  std::size_t bitmask_rows = 0;   ///< rows touched building a bitmask
  std::size_t matching_rows = 0;  ///< bitmask cardinality (when built)
  double est_selectivity = -1.0;  ///< optimizer's estimate (when consulted)
};

}  // namespace vdb

#endif  // VDB_EXEC_PLAN_H_
