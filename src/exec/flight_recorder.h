#ifndef VDB_EXEC_FLIGHT_RECORDER_H_
#define VDB_EXEC_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sync.h"

namespace vdb {

/// One retained bad query: everything an operator needs to answer "what
/// were the worst things this server just did" without re-running them.
struct FlightRecord {
  std::uint64_t seq = 0;       ///< completion sequence number (recency)
  std::string query;           ///< query text (truncated, see kMaxQueryBytes)
  std::string tenant;          ///< "" when the query had no tenant
  std::string verdict;         ///< Status::CodeName of the outcome ("OK",
                               ///< "DEADLINE_EXCEEDED", ...) — matches the
                               ///< wire verdict names
  bool failed = false;         ///< verdict != OK
  double total_ms = 0.0;       ///< end-to-end wall time
  bool has_deadline = false;
  double deadline_slack_ms = 0.0;  ///< deadline - completion (negative =
                                   ///< finished past its deadline)
  std::string stages;          ///< QueryTrace::StageSummary() attribution
  std::string trace;           ///< full rendered span tree ("" if untraced)
};

/// Lock-protected ring of the N *worst* recent queries (the tentpole's
/// flight recorder). "Worst" orders failures before slow successes, then
/// by total latency; "recent" means entries age out after a horizon of
/// subsequent completions so a one-off disaster from an hour ago doesn't
/// pin the board forever.
///
/// Usage is two-phase so the hot path stays cheap:
///   std::uint64_t seq = fr.NoteCompletion(failed, total_ms);
///   if (seq != 0) fr.Record(...)   // only then render trace etc.
/// NoteCompletion increments the completion counter and answers "would
/// this query make the board?" with one mutex acquisition and no
/// allocation; the expensive capture (rendering the span tree, copying
/// the query text) happens only for admitted candidates.
class FlightRecorder {
 public:
  /// Retained entries ("worst N").
  static constexpr std::size_t kDefaultCapacity = 8;
  /// An entry is stale once this many completions happened after it.
  static constexpr std::uint64_t kDefaultStaleHorizon = 512;
  /// Query text is truncated to this many bytes in a record.
  static constexpr std::size_t kMaxQueryBytes = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity,
                          std::uint64_t stale_horizon = kDefaultStaleHorizon);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide instance (the one ExecuteQueryTraced and the serving
  /// worker report into).
  static FlightRecorder& Global();

  /// Counts one completed query and decides whether it deserves capture.
  /// Returns its sequence number if the caller should follow up with
  /// Record(), 0 if the query is not board-worthy (faster than every
  /// retained entry on a full, fresh board).
  std::uint64_t NoteCompletion(bool failed, double total_ms);

  /// Captures `record` (record.seq must come from NoteCompletion).
  /// Evicts stale entries first, then the least-bad entry.
  void Record(FlightRecord record);

  /// Retained entries, worst first.
  std::vector<FlightRecord> WorstFirst() const;

  /// [{"seq":..,"query":"..","tenant":"..","verdict":"..","failed":..,
  ///   "total_ms":..,"deadline_slack_ms":..|null,"stages":"..",
  ///   "trace":".."}] — worst first, full JSON string escaping.
  std::string RenderJson() const;

  void Clear();

 private:
  /// True when a beats b in badness order (failures first, then slower).
  static bool Worse(const FlightRecord& a, const FlightRecord& b);

  mutable Mutex mu_;  ///< §9.1 leaf
  /// Board thresholds: immutable after construction, so the two-phase
  /// NoteCompletion/Record handoff may read them on either side of the
  /// lock without a window (regression-tested in windowed_metrics_test).
  const std::size_t capacity_;
  const std::uint64_t stale_horizon_;
  std::uint64_t completions_ VDB_GUARDED_BY(mu_) = 0;  ///< queries seen
  /// Unsorted; sorted on read.
  std::vector<FlightRecord> entries_ VDB_GUARDED_BY(mu_);
};

}  // namespace vdb

#endif  // VDB_EXEC_FLIGHT_RECORDER_H_
