#include "core/score_selection.h"

#include <algorithm>
#include <cstdio>

#include "core/metric_learning.h"

namespace vdb {

Result<std::vector<ScoreCandidate>> SelectScore(
    const ScoreSelectionInput& input, const std::vector<MetricSpec>& specs) {
  if (input.data == nullptr || input.data->empty()) {
    return Status::InvalidArgument("data is required");
  }
  if (input.same_pairs.empty() || input.diff_pairs.empty()) {
    return Status::InvalidArgument("both pair populations are required");
  }
  const FloatMatrix& data = *input.data;
  auto check = [&](const std::pair<std::uint32_t, std::uint32_t>& p) {
    return p.first < data.rows() && p.second < data.rows();
  };
  for (const auto& p : input.same_pairs) {
    if (!check(p)) return Status::OutOfRange("pair index out of range");
  }
  for (const auto& p : input.diff_pairs) {
    if (!check(p)) return Status::OutOfRange("pair index out of range");
  }

  std::vector<ScoreCandidate> out;
  for (const auto& spec : specs) {
    VDB_ASSIGN_OR_RETURN(Scorer scorer, Scorer::Create(spec, data.cols()));
    std::vector<float> same, diff;
    same.reserve(input.same_pairs.size());
    diff.reserve(input.diff_pairs.size());
    for (const auto& [a, b] : input.same_pairs) {
      same.push_back(scorer.Distance(data.row(a), data.row(b)));
    }
    for (const auto& [a, b] : input.diff_pairs) {
      diff.push_back(scorer.Distance(data.row(a), data.row(b)));
    }
    // AUC by direct pair comparison (exact; populations are small).
    double wins = 0.0;
    for (float s : same) {
      for (float d : diff) {
        if (s < d) {
          wins += 1.0;
        } else if (s == d) {
          wins += 0.5;
        }
      }
    }
    ScoreCandidate candidate;
    candidate.spec = spec;
    candidate.auc =
        wins / (static_cast<double>(same.size()) * diff.size());
    candidate.name = MetricName(spec.metric);
    if (spec.metric == Metric::kMinkowski) {
      // Compact "p" suffix: one decimal place covers the usual orders.
      char buf[16];
      std::snprintf(buf, sizeof(buf), "-p%.1f", spec.minkowski_p);
      candidate.name += buf;
    }
    out.push_back(std::move(candidate));
  }
  std::sort(out.begin(), out.end(),
            [](const ScoreCandidate& a, const ScoreCandidate& b) {
              return a.auc > b.auc;
            });
  return out;
}

Result<std::vector<ScoreCandidate>> SelectScoreDefaultSlate(
    const ScoreSelectionInput& input) {
  std::vector<MetricSpec> slate = {
      MetricSpec::L2(), MetricSpec::InnerProduct(), MetricSpec::Cosine(),
      MetricSpec::Minkowski(1.0f), MetricSpec::Minkowski(3.0f)};
  if (input.data != nullptr && input.same_pairs.size() >= 8) {
    auto learned = LearnMahalanobis(*input.data, input.same_pairs);
    if (learned.ok()) slate.push_back(*learned);
  }
  return SelectScore(input, slate);
}

}  // namespace vdb
