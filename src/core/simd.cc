#include "core/simd.h"

#include <immintrin.h>

#include <algorithm>

#if defined(__GNUC__) && !defined(__clang__)
// GCC's AVX-512 reduce intrinsics expand _mm256_undefined_pd() through
// always_inline, which -Werror=uninitialized misflags (GCC PR 105593).
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace vdb::simd {

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma");
  return has;
}

bool HasAvx512() {
  // F covers 16-wide float FMA + gathers; BW covers the byte shuffles and
  // uint8->uint16 widening of the FastScan path. FMA rides along with F on
  // every AVX-512 part, but check it anyway for the fused kernels.
  static const bool has = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512bw") &&
                          __builtin_cpu_supports("fma");
  return has;
}

DispatchTier ActiveTier() {
  if (HasAvx512()) return DispatchTier::kAvx512;
  if (HasAvx2()) return DispatchTier::kAvx2;
  return DispatchTier::kScalar;
}

const char* TierName(DispatchTier tier) {
  switch (tier) {
    case DispatchTier::kScalar: return "scalar";
    case DispatchTier::kAvx2: return "avx2";
    case DispatchTier::kAvx512: return "avx512";
  }
  return "unknown";
}

// The scalar kernels are the honest pre-SIMD baseline the paper's hardware
// acceleration section compares against, so vectorization is disabled for
// them specifically.
#define VDB_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))

VDB_NO_VECTORIZE
float L2SqScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

VDB_NO_VECTORIZE
float InnerProductScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

VDB_NO_VECTORIZE
float NormSqScalar(const float* a, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return acc;
}

VDB_NO_VECTORIZE
float AdcLookupScalar(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub) {
  float acc = 0.0f;
  for (std::size_t j = 0; j < m; ++j) acc += tables[j * ksub + codes[j]];
  return acc;
}

namespace {

// target("avx2") rather than relying on the translation unit's -march:
// with VDB_NATIVE_ARCH=OFF the base ISA has no AVX, and GCC refuses to
// inline the always_inline intrinsics into an un-targeted function.
__attribute__((target("avx2"))) inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

}  // namespace

__attribute__((target("avx2,fma")))
float L2SqAvx2(const float* a, const float* b, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    __m256 d = _mm256_sub_ps(va, vb);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float total = HorizontalSum(acc);
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2,fma")))
float InnerProductAvx2(const float* a, const float* b, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_fmadd_ps(va, vb, acc);
  }
  float total = HorizontalSum(acc);
  for (; i < dim; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2,fma")))
float NormSqAvx2(const float* a, std::size_t dim) {
  return InnerProductAvx2(a, a, dim);
}

__attribute__((target("avx512f,fma")))
float L2SqAvx512(const float* a, const float* b, std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 va = _mm512_loadu_ps(a + i);
    __m512 vb = _mm512_loadu_ps(b + i);
    __m512 d = _mm512_sub_ps(va, vb);
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  float total = _mm512_reduce_add_ps(acc);
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx512f,fma")))
float InnerProductAvx512(const float* a, const float* b, std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 va = _mm512_loadu_ps(a + i);
    __m512 vb = _mm512_loadu_ps(b + i);
    acc = _mm512_fmadd_ps(va, vb, acc);
  }
  float total = _mm512_reduce_add_ps(acc);
  for (; i < dim; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx512f,fma")))
float NormSqAvx512(const float* a, std::size_t dim) {
  return InnerProductAvx512(a, a, dim);
}

float L2Sq(const float* a, const float* b, std::size_t dim) {
  if (HasAvx512()) return L2SqAvx512(a, b, dim);
  return HasAvx2() ? L2SqAvx2(a, b, dim) : L2SqScalar(a, b, dim);
}

float InnerProduct(const float* a, const float* b, std::size_t dim) {
  if (HasAvx512()) return InnerProductAvx512(a, b, dim);
  return HasAvx2() ? InnerProductAvx2(a, b, dim)
                   : InnerProductScalar(a, b, dim);
}

float NormSq(const float* a, std::size_t dim) {
  if (HasAvx512()) return NormSqAvx512(a, dim);
  return HasAvx2() ? NormSqAvx2(a, dim) : NormSqScalar(a, dim);
}

// ------------------------------------------------- one-query-vs-many batch
//
// Four database rows per iteration share each query-register load; every
// row keeps its own accumulator fed in the same element order as the
// single-pair kernel of the tier, so per-row results are bit-identical to
// that kernel (the parity the prefetch-ablation test relies on).

namespace {

__attribute__((target("avx2,fma")))
void L2SqX4Avx2(const float* q, const float* r0, const float* r1,
                const float* r2, const float* r3, std::size_t dim,
                float* out) {
  __m256 a0 = _mm256_setzero_ps(), a1 = a0, a2 = a0, a3 = a0;
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 vq = _mm256_loadu_ps(q + i);
    __m256 d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(r0 + i));
    __m256 d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(r1 + i));
    __m256 d2 = _mm256_sub_ps(vq, _mm256_loadu_ps(r2 + i));
    __m256 d3 = _mm256_sub_ps(vq, _mm256_loadu_ps(r3 + i));
    a0 = _mm256_fmadd_ps(d0, d0, a0);
    a1 = _mm256_fmadd_ps(d1, d1, a1);
    a2 = _mm256_fmadd_ps(d2, d2, a2);
    a3 = _mm256_fmadd_ps(d3, d3, a3);
  }
  out[0] = HorizontalSum(a0);
  out[1] = HorizontalSum(a1);
  out[2] = HorizontalSum(a2);
  out[3] = HorizontalSum(a3);
  for (; i < dim; ++i) {
    float q_i = q[i];
    float d0 = q_i - r0[i], d1 = q_i - r1[i];
    float d2 = q_i - r2[i], d3 = q_i - r3[i];
    out[0] += d0 * d0;
    out[1] += d1 * d1;
    out[2] += d2 * d2;
    out[3] += d3 * d3;
  }
}

__attribute__((target("avx2,fma")))
void IpX4Avx2(const float* q, const float* r0, const float* r1,
              const float* r2, const float* r3, std::size_t dim, float* out) {
  __m256 a0 = _mm256_setzero_ps(), a1 = a0, a2 = a0, a3 = a0;
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 vq = _mm256_loadu_ps(q + i);
    a0 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r0 + i), a0);
    a1 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r1 + i), a1);
    a2 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r2 + i), a2);
    a3 = _mm256_fmadd_ps(vq, _mm256_loadu_ps(r3 + i), a3);
  }
  out[0] = HorizontalSum(a0);
  out[1] = HorizontalSum(a1);
  out[2] = HorizontalSum(a2);
  out[3] = HorizontalSum(a3);
  for (; i < dim; ++i) {
    float q_i = q[i];
    out[0] += q_i * r0[i];
    out[1] += q_i * r1[i];
    out[2] += q_i * r2[i];
    out[3] += q_i * r3[i];
  }
}

__attribute__((target("avx512f,fma")))
void L2SqX4Avx512(const float* q, const float* r0, const float* r1,
                  const float* r2, const float* r3, std::size_t dim,
                  float* out) {
  __m512 a0 = _mm512_setzero_ps(), a1 = a0, a2 = a0, a3 = a0;
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 vq = _mm512_loadu_ps(q + i);
    __m512 d0 = _mm512_sub_ps(vq, _mm512_loadu_ps(r0 + i));
    __m512 d1 = _mm512_sub_ps(vq, _mm512_loadu_ps(r1 + i));
    __m512 d2 = _mm512_sub_ps(vq, _mm512_loadu_ps(r2 + i));
    __m512 d3 = _mm512_sub_ps(vq, _mm512_loadu_ps(r3 + i));
    a0 = _mm512_fmadd_ps(d0, d0, a0);
    a1 = _mm512_fmadd_ps(d1, d1, a1);
    a2 = _mm512_fmadd_ps(d2, d2, a2);
    a3 = _mm512_fmadd_ps(d3, d3, a3);
  }
  out[0] = _mm512_reduce_add_ps(a0);
  out[1] = _mm512_reduce_add_ps(a1);
  out[2] = _mm512_reduce_add_ps(a2);
  out[3] = _mm512_reduce_add_ps(a3);
  for (; i < dim; ++i) {
    float q_i = q[i];
    float d0 = q_i - r0[i], d1 = q_i - r1[i];
    float d2 = q_i - r2[i], d3 = q_i - r3[i];
    out[0] += d0 * d0;
    out[1] += d1 * d1;
    out[2] += d2 * d2;
    out[3] += d3 * d3;
  }
}

__attribute__((target("avx512f,fma")))
void IpX4Avx512(const float* q, const float* r0, const float* r1,
                const float* r2, const float* r3, std::size_t dim,
                float* out) {
  __m512 a0 = _mm512_setzero_ps(), a1 = a0, a2 = a0, a3 = a0;
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 vq = _mm512_loadu_ps(q + i);
    a0 = _mm512_fmadd_ps(vq, _mm512_loadu_ps(r0 + i), a0);
    a1 = _mm512_fmadd_ps(vq, _mm512_loadu_ps(r1 + i), a1);
    a2 = _mm512_fmadd_ps(vq, _mm512_loadu_ps(r2 + i), a2);
    a3 = _mm512_fmadd_ps(vq, _mm512_loadu_ps(r3 + i), a3);
  }
  out[0] = _mm512_reduce_add_ps(a0);
  out[1] = _mm512_reduce_add_ps(a1);
  out[2] = _mm512_reduce_add_ps(a2);
  out[3] = _mm512_reduce_add_ps(a3);
  for (; i < dim; ++i) {
    float q_i = q[i];
    out[0] += q_i * r0[i];
    out[1] += q_i * r1[i];
    out[2] += q_i * r2[i];
    out[3] += q_i * r3[i];
  }
}

using X4Fn = void (*)(const float*, const float*, const float*, const float*,
                      const float*, std::size_t, float*);
using X1Fn = float (*)(const float*, const float*, std::size_t);

/// Shared batch driver: 4-row blocks through `four`, remainder through
/// `one`, prefetching the next block's rows one iteration ahead so the
/// gather's cache misses overlap the current block's FMAs. `row(i)` maps
/// a batch position to its row pointer (contiguous or gathered).
template <typename RowFn>
void BatchLoop(const float* q, std::size_t dim, std::size_t n, RowFn row,
               float* out, X1Fn one, X4Fn four) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::size_t ahead_end = std::min(n, i + 8);
    for (std::size_t p = i + 4; p < ahead_end; ++p) {
      PrefetchFloats(row(p), dim);
    }
    four(q, row(i), row(i + 1), row(i + 2), row(i + 3), dim, out + i);
  }
  for (; i < n; ++i) out[i] = one(q, row(i), dim);
}

}  // namespace

void L2SqBatchGatherScalar(const float* q, const float* base, std::size_t dim,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = L2SqScalar(q, base + std::size_t{ids[i]} * dim, dim);
  }
}

void InnerProductBatchGatherScalar(const float* q, const float* base,
                                   std::size_t dim, const std::uint32_t* ids,
                                   std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = InnerProductScalar(q, base + std::size_t{ids[i]} * dim, dim);
  }
}

void L2SqBatchGatherAvx2(const float* q, const float* base, std::size_t dim,
                         const std::uint32_t* ids, std::size_t n,
                         float* out) {
  auto row = [&](std::size_t i) { return base + std::size_t{ids[i]} * dim; };
  BatchLoop(q, dim, n, row, out, &L2SqAvx2, &L2SqX4Avx2);
}

void InnerProductBatchGatherAvx2(const float* q, const float* base,
                                 std::size_t dim, const std::uint32_t* ids,
                                 std::size_t n, float* out) {
  auto row = [&](std::size_t i) { return base + std::size_t{ids[i]} * dim; };
  BatchLoop(q, dim, n, row, out, &InnerProductAvx2, &IpX4Avx2);
}

void L2SqBatchGatherAvx512(const float* q, const float* base, std::size_t dim,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) {
  auto row = [&](std::size_t i) { return base + std::size_t{ids[i]} * dim; };
  BatchLoop(q, dim, n, row, out, &L2SqAvx512, &L2SqX4Avx512);
}

void InnerProductBatchGatherAvx512(const float* q, const float* base,
                                   std::size_t dim, const std::uint32_t* ids,
                                   std::size_t n, float* out) {
  auto row = [&](std::size_t i) { return base + std::size_t{ids[i]} * dim; };
  BatchLoop(q, dim, n, row, out, &InnerProductAvx512, &IpX4Avx512);
}

void L2SqBatchGather(const float* q, const float* base, std::size_t dim,
                     const std::uint32_t* ids, std::size_t n, float* out) {
  switch (ActiveTier()) {
    case DispatchTier::kAvx512:
      return L2SqBatchGatherAvx512(q, base, dim, ids, n, out);
    case DispatchTier::kAvx2:
      return L2SqBatchGatherAvx2(q, base, dim, ids, n, out);
    case DispatchTier::kScalar:
      return L2SqBatchGatherScalar(q, base, dim, ids, n, out);
  }
}

void InnerProductBatchGather(const float* q, const float* base,
                             std::size_t dim, const std::uint32_t* ids,
                             std::size_t n, float* out) {
  switch (ActiveTier()) {
    case DispatchTier::kAvx512:
      return InnerProductBatchGatherAvx512(q, base, dim, ids, n, out);
    case DispatchTier::kAvx2:
      return InnerProductBatchGatherAvx2(q, base, dim, ids, n, out);
    case DispatchTier::kScalar:
      return InnerProductBatchGatherScalar(q, base, dim, ids, n, out);
  }
}

void L2SqBatch(const float* q, const float* rows, std::size_t dim,
               std::size_t n, float* out) {
  auto row = [&](std::size_t i) { return rows + i * dim; };
  switch (ActiveTier()) {
    case DispatchTier::kAvx512:
      return BatchLoop(q, dim, n, row, out, &L2SqAvx512, &L2SqX4Avx512);
    case DispatchTier::kAvx2:
      return BatchLoop(q, dim, n, row, out, &L2SqAvx2, &L2SqX4Avx2);
    case DispatchTier::kScalar:
      for (std::size_t i = 0; i < n; ++i) out[i] = L2SqScalar(q, row(i), dim);
      return;
  }
}

void InnerProductBatch(const float* q, const float* rows, std::size_t dim,
                       std::size_t n, float* out) {
  auto row = [&](std::size_t i) { return rows + i * dim; };
  switch (ActiveTier()) {
    case DispatchTier::kAvx512:
      return BatchLoop(q, dim, n, row, out, &InnerProductAvx512,
                       &IpX4Avx512);
    case DispatchTier::kAvx2:
      return BatchLoop(q, dim, n, row, out, &InnerProductAvx2, &IpX4Avx2);
    case DispatchTier::kScalar:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = InnerProductScalar(q, row(i), dim);
      }
      return;
  }
}

// ------------------------------------------------------------ FastScan/ADC

VDB_NO_VECTORIZE
void QuickAdcBlockScalar(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out) {
  for (int v = 0; v < 32; ++v) out[v] = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const unsigned char* lut = luts + j * 16;
    const unsigned char* row = codes + j * 32;
    for (int v = 0; v < 32; ++v) {
      out[v] = static_cast<unsigned short>(out[v] + lut[row[v] & 0x0F]);
    }
  }
}

__attribute__((target("avx2")))
void QuickAdcBlockAvx2(const unsigned char* luts, const unsigned char* codes,
                       std::size_t m, unsigned short* out) {
  // Two uint16x16 accumulators cover the 32 lanes.
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  const __m256i nibble_mask = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t j = 0; j < m; ++j) {
    // Broadcast the 16-byte LUT into both 128-bit lanes.
    __m128i lut128 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(luts + j * 16));
    __m256i lut = _mm256_broadcastsi128_si256(lut128);
    __m256i code =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + j * 32));
    code = _mm256_and_si256(code, nibble_mask);
    // The register-resident lookup: 32 table probes in one instruction.
    __m256i vals = _mm256_shuffle_epi8(lut, code);
    acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
    acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
  }
  // unpacklo/hi interleave within 128-bit lanes; restore vector order.
  alignas(32) unsigned short lo[16], hi[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo), acc_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi), acc_hi);
  for (int i = 0; i < 8; ++i) {
    out[i] = lo[i];            // bytes 0..7   (lane 0 low)
    out[i + 8] = hi[i];        // bytes 8..15  (lane 0 high)
    out[i + 16] = lo[i + 8];   // bytes 16..23 (lane 1 low)
    out[i + 24] = hi[i + 8];   // bytes 24..31 (lane 1 high)
  }
}

__attribute__((target("avx2,avx512f,avx512bw")))
void QuickAdcBlockAvx512(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out) {
  // One uint16x32 accumulator covers the whole block; the order-preserving
  // zero-extension (vpmovzxbw) replaces the AVX2 path's unpack shuffle
  // dance, so the accumulator can be stored straight to `out`.
  __m512i acc = _mm512_setzero_si512();
  const __m256i nibble_mask = _mm256_set1_epi8(0x0F);
  for (std::size_t j = 0; j < m; ++j) {
    __m128i lut128 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(luts + j * 16));
    __m256i lut = _mm256_broadcastsi128_si256(lut128);
    __m256i code =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + j * 32));
    code = _mm256_and_si256(code, nibble_mask);
    __m256i vals = _mm256_shuffle_epi8(lut, code);
    acc = _mm512_add_epi16(acc, _mm512_cvtepu8_epi16(vals));
  }
  _mm512_storeu_si512(out, acc);
}

void QuickAdcBlock(const unsigned char* luts, const unsigned char* codes,
                   std::size_t m, unsigned short* out) {
  switch (ActiveTier()) {
    case DispatchTier::kAvx512:
      return QuickAdcBlockAvx512(luts, codes, m, out);
    case DispatchTier::kAvx2:
      return QuickAdcBlockAvx2(luts, codes, m, out);
    case DispatchTier::kScalar:
      return QuickAdcBlockScalar(luts, codes, m, out);
  }
}

__attribute__((target("avx512f,avx512bw")))
float AdcLookupAvx512(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub) {
  // 16 subspaces per gather: lane l of block j reads
  // tables[(j+l)*ksub + codes[j+l]] = (tables + j*ksub)[l*ksub + code].
  __m512 acc = _mm512_setzero_ps();
  const __m512i lane_ramp = _mm512_mullo_epi32(
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0),
      _mm512_set1_epi32(static_cast<int>(ksub)));
  std::size_t j = 0;
  for (; j + 16 <= m; j += 16) {
    __m128i code8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + j));
    __m512i idx = _mm512_add_epi32(lane_ramp, _mm512_cvtepu8_epi32(code8));
    acc = _mm512_add_ps(
        acc, _mm512_i32gather_ps(idx, tables + j * ksub, sizeof(float)));
  }
  float total = _mm512_reduce_add_ps(acc);
  for (; j < m; ++j) total += tables[j * ksub + codes[j]];
  return total;
}

float AdcLookup(const float* tables, const unsigned char* codes,
                std::size_t m, std::size_t ksub) {
  // The gather amortizes only when a full 16-subspace block exists; for
  // small m the scalar unrolled walk stays ahead of gather latency. The
  // register-resident SIMD shuffle variant (Quick ADC) is modeled in
  // quant/pq.cc via 4-bit codes.
  if (m >= 16 && HasAvx512()) return AdcLookupAvx512(tables, codes, m, ksub);
  float acc0 = 0.0f, acc1 = 0.0f;
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    acc0 += tables[j * ksub + codes[j]];
    acc1 += tables[(j + 1) * ksub + codes[j + 1]];
  }
  if (j < m) acc0 += tables[j * ksub + codes[j]];
  return acc0 + acc1;
}

}  // namespace vdb::simd
