#include "core/simd.h"

#include <immintrin.h>

namespace vdb::simd {

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("fma");
  return has;
}

// The scalar kernels are the honest pre-SIMD baseline the paper's hardware
// acceleration section compares against, so vectorization is disabled for
// them specifically.
#define VDB_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))

VDB_NO_VECTORIZE
float L2SqScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

VDB_NO_VECTORIZE
float InnerProductScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

VDB_NO_VECTORIZE
float NormSqScalar(const float* a, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return acc;
}

VDB_NO_VECTORIZE
float AdcLookupScalar(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub) {
  float acc = 0.0f;
  for (std::size_t j = 0; j < m; ++j) acc += tables[j * ksub + codes[j]];
  return acc;
}

namespace {

// target("avx2") rather than relying on the translation unit's -march:
// with VDB_NATIVE_ARCH=OFF the base ISA has no AVX, and GCC refuses to
// inline the always_inline intrinsics into an un-targeted function.
__attribute__((target("avx2"))) inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

}  // namespace

__attribute__((target("avx2,fma")))
float L2SqAvx2(const float* a, const float* b, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    __m256 d = _mm256_sub_ps(va, vb);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float total = HorizontalSum(acc);
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2,fma")))
float InnerProductAvx2(const float* a, const float* b, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_fmadd_ps(va, vb, acc);
  }
  float total = HorizontalSum(acc);
  for (; i < dim; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2,fma")))
float NormSqAvx2(const float* a, std::size_t dim) {
  return InnerProductAvx2(a, a, dim);
}

float L2Sq(const float* a, const float* b, std::size_t dim) {
  return HasAvx2() ? L2SqAvx2(a, b, dim) : L2SqScalar(a, b, dim);
}

float InnerProduct(const float* a, const float* b, std::size_t dim) {
  return HasAvx2() ? InnerProductAvx2(a, b, dim)
                   : InnerProductScalar(a, b, dim);
}

float NormSq(const float* a, std::size_t dim) {
  return HasAvx2() ? NormSqAvx2(a, dim) : NormSqScalar(a, dim);
}

VDB_NO_VECTORIZE
void QuickAdcBlockScalar(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out) {
  for (int v = 0; v < 32; ++v) out[v] = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const unsigned char* lut = luts + j * 16;
    const unsigned char* row = codes + j * 32;
    for (int v = 0; v < 32; ++v) {
      out[v] = static_cast<unsigned short>(out[v] + lut[row[v] & 0x0F]);
    }
  }
}

__attribute__((target("avx2")))
void QuickAdcBlockAvx2(const unsigned char* luts, const unsigned char* codes,
                       std::size_t m, unsigned short* out) {
  // Two uint16x16 accumulators cover the 32 lanes.
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  const __m256i nibble_mask = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t j = 0; j < m; ++j) {
    // Broadcast the 16-byte LUT into both 128-bit lanes.
    __m128i lut128 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(luts + j * 16));
    __m256i lut = _mm256_broadcastsi128_si256(lut128);
    __m256i code =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + j * 32));
    code = _mm256_and_si256(code, nibble_mask);
    // The register-resident lookup: 32 table probes in one instruction.
    __m256i vals = _mm256_shuffle_epi8(lut, code);
    acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
    acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
  }
  // unpacklo/hi interleave within 128-bit lanes; restore vector order.
  alignas(32) unsigned short lo[16], hi[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo), acc_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi), acc_hi);
  for (int i = 0; i < 8; ++i) {
    out[i] = lo[i];            // bytes 0..7   (lane 0 low)
    out[i + 8] = hi[i];        // bytes 8..15  (lane 0 high)
    out[i + 16] = lo[i + 8];   // bytes 16..23 (lane 1 low)
    out[i + 24] = hi[i + 8];   // bytes 24..31 (lane 1 high)
  }
}

void QuickAdcBlock(const unsigned char* luts, const unsigned char* codes,
                   std::size_t m, unsigned short* out) {
  if (HasAvx2()) {
    QuickAdcBlockAvx2(luts, codes, m, out);
  } else {
    QuickAdcBlockScalar(luts, codes, m, out);
  }
}

float AdcLookup(const float* tables, const unsigned char* codes,
                std::size_t m, std::size_t ksub) {
  // Gather-style lookups do not beat scalar table walks for small m, and
  // the table rows are not interleaved for in-register shuffles here; the
  // dispatched path simply unrolls. The register-resident SIMD shuffle
  // variant (Quick ADC) is modeled in quant/pq.cc via 4-bit codes.
  float acc0 = 0.0f, acc1 = 0.0f;
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    acc0 += tables[j * ksub + codes[j]];
    acc1 += tables[(j + 1) * ksub + codes[j + 1]];
  }
  if (j < m) acc0 += tables[j * ksub + codes[j]];
  return acc0 + acc1;
}

}  // namespace vdb::simd
