#ifndef VDB_CORE_DISTANCE_H_
#define VDB_CORE_DISTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace vdb {

/// Basic similarity scores surveyed in §2.1 "Score Design". Every score is
/// normalized library-wide to a *distance* (lower is better); similarities
/// (inner product, cosine) are mapped monotonically so that top-k by
/// ascending distance equals top-k by descending similarity.
enum class Metric {
  kL2,           ///< squared Euclidean distance
  kInnerProduct, ///< negated dot product (MIPS)
  kCosine,       ///< 1 - cosine similarity
  kHamming,      ///< per-dimension binarized (>= 0.5) Hamming distance
  kMinkowski,    ///< Minkowski distance ||a-b||_p (parameter `minkowski_p`)
  kMahalanobis,  ///< sqrt((a-b)^T M (a-b)) with learned/supplied M = L^T L
};

/// Human-readable metric name ("l2", "ip", ...).
std::string MetricName(Metric metric);

/// Full specification of a score: the metric plus its parameters.
struct MetricSpec {
  Metric metric = Metric::kL2;
  /// Order of the Minkowski norm; p >= 1 gives a true metric.
  float minkowski_p = 3.0f;
  /// Row-major dim x dim factor L for Mahalanobis (distance uses M = L^T L).
  /// Identity is assumed when empty.
  std::vector<float> mahalanobis_l;

  static MetricSpec L2() { return {Metric::kL2, 3.0f, {}}; }
  static MetricSpec InnerProduct() { return {Metric::kInnerProduct, 3.0f, {}}; }
  static MetricSpec Cosine() { return {Metric::kCosine, 3.0f, {}}; }
  static MetricSpec Hamming() { return {Metric::kHamming, 3.0f, {}}; }
  static MetricSpec Minkowski(float p) { return {Metric::kMinkowski, p, {}}; }
  static MetricSpec Mahalanobis(std::vector<float> l) {
    return {Metric::kMahalanobis, 3.0f, std::move(l)};
  }
};

/// Evaluates a similarity score between two vectors of a fixed dimension.
/// Copyable; `Distance` is thread-safe (no mutable state).
class Scorer {
 public:
  Scorer() = default;

  /// Validates the spec against `dim` and builds the evaluator.
  static Result<Scorer> Create(const MetricSpec& spec, std::size_t dim);

  /// Internal score: distance, lower is better.
  float Distance(const float* a, const float* b) const {
    return fn_(*this, a, b);
  }
  float Distance(VectorView a, VectorView b) const {
    return Distance(a.data(), b.data());
  }

  /// Batched distance: out[i] = Distance(query, base + ids[i]*dim) for the
  /// `n` gathered rows of a row-major matrix. For L2 and inner product this
  /// routes through the one-query-vs-many SIMD kernels (bit-identical per
  /// row to `Distance` on the same machine); other metrics fall back to a
  /// per-row loop, so callers may batch unconditionally.
  void DistanceBatch(const float* query, const float* base,
                     const std::uint32_t* ids, std::size_t n,
                     float* out) const;

  /// Maps an internal distance back to the user-facing score of the metric
  /// (e.g. inner product similarity, cosine similarity).
  float ToUserScore(float dist) const;

  /// True for scores satisfying the metric axioms (symmetry, identity,
  /// triangle inequality): L2*, Hamming, Minkowski (p>=1), Mahalanobis.
  /// (*squared L2 satisfies a relaxed triangle inequality; `TriangleSafe`
  /// reports on the rooted form.)
  bool IsTrueMetric() const;

  std::size_t dim() const { return dim_; }
  Metric metric() const { return spec_.metric; }
  const MetricSpec& spec() const { return spec_; }

 private:
  using Fn = float (*)(const Scorer&, const float*, const float*);

  Fn fn_ = nullptr;
  std::size_t dim_ = 0;
  MetricSpec spec_;

  static float L2Fn(const Scorer& s, const float* a, const float* b);
  static float IpFn(const Scorer& s, const float* a, const float* b);
  static float CosineFn(const Scorer& s, const float* a, const float* b);
  static float HammingFn(const Scorer& s, const float* a, const float* b);
  static float MinkowskiFn(const Scorer& s, const float* a, const float* b);
  static float MahalanobisFn(const Scorer& s, const float* a, const float* b);
};

}  // namespace vdb

#endif  // VDB_CORE_DISTANCE_H_
