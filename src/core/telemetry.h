#ifndef VDB_CORE_TELEMETRY_H_
#define VDB_CORE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/sync.h"

namespace vdb {

/// Process-wide metrics plane (the survey's operational-visibility
/// requirement: production VDBMSs "live or die" on being able to see
/// per-query costs in the aggregate). Three metric kinds:
///
///   Counter   — monotonic event count (searches, fsyncs, failures)
///   Gauge     — instantaneous level (breaker cooldown, armed failpoints)
///   Histogram — fixed-bucket latency distribution with p50/p95/p99
///
/// Hot-path cost model: every increment is a *relaxed atomic add* on a
/// per-thread stripe (no mutex, no CAS loop for counters); reads merge
/// the stripes. Registration (name -> metric) takes a mutex, so call
/// sites cache the returned reference in a function-local static.
///
/// Naming scheme (DESIGN.md §7): `vdb_<subsystem>_<what>[_total|_seconds]`
/// with optional Prometheus-style labels embedded in the name, e.g.
/// `vdb_failpoint_fires_total{name="wal.append.fail"}`.

/// Cache-line stripes shared by counters and histograms. A thread is
/// assigned one stripe for its lifetime (round-robin), so concurrent
/// increments from different threads usually touch different lines.
inline constexpr std::size_t kTelemetryStripes = 16;

/// This thread's stripe index in [0, kTelemetryStripes).
std::size_t TelemetryStripe();

/// Monotonic event counter.
///
/// Reset contract (shared with Histogram::Reset): Reset zeroes the
/// stripes one relaxed store at a time, so it is *not* linearizable
/// against concurrent Inc — an increment racing the sweep lands before
/// or after the zeroing of its own stripe and is kept or dropped
/// accordingly, and a concurrent Value() may observe a partial sweep.
/// Reset is safe (no data race, never negative, never corrupt) but only
/// *exact* when writers are quiesced; production code treats metrics as
/// cumulative and derives rates from windowed deltas
/// (core/telemetry_window.h) instead of resetting.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    stripes_[TelemetryStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kTelemetryStripes> stripes_;
};

/// Instantaneous signed level.
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One merged read of a histogram: bucket counts, sum, and the
/// percentile math over them. Taking a single Snapshot and deriving
/// count/sum/p50/p95/p99 from it is what keeps a render internally
/// consistent — separate Count()/Percentile() calls each re-merge the
/// stripes and can disagree under concurrent writers.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< inclusive upper edges
  std::vector<std::uint64_t> counts;   ///< size bounds.size() + 1 (+Inf last)
  double sum = 0.0;

  std::uint64_t TotalCount() const;
  /// p in [0, 100]; linear interpolation inside the winning bucket.
  /// Returns 0 for an empty snapshot.
  double Percentile(double p) const;

  /// Per-bucket difference vs an `earlier` snapshot of the same
  /// histogram (the windowed-view primitive). Buckets where the earlier
  /// count exceeds this one (a racing Reset) clamp to zero.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit +Inf bucket catches the overflow.
/// Percentiles interpolate linearly inside the winning bucket, which is
/// exact enough for tail-latency reporting at 2x-spaced bounds.
///
/// Reset shares the Counter::Reset contract: stripe-by-stripe relaxed
/// zeroing, exact only when writers are quiesced.
class Histogram {
 public:
  /// At most this many finite bucket edges.
  static constexpr std::size_t kMaxBounds = 48;

  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  std::uint64_t Count() const;
  double Sum() const;
  /// p in [0, 100]. Returns 0 for an empty histogram. One merged read;
  /// callers needing count+sum+percentiles together should take one
  /// Snapshot() instead of separate calls.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged per-bucket counts, size bounds().size() + 1 (last = +Inf).
  std::vector<std::uint64_t> BucketCounts() const;

  /// One merged read of buckets + sum (see HistogramSnapshot).
  HistogramSnapshot Snapshot() const;

  void Reset();

  /// Default latency edges: 1us doubling up to ~67s (27 finite buckets).
  static std::span<const double> LatencyBoundsSeconds();

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kMaxBounds + 1> counts{};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Stripe, kTelemetryStripes> stripes_;
};

/// Named-metric registry. `Global()` is the process-wide instance every
/// instrumented subsystem reports into; tests may construct private
/// registries for golden renders. Metrics are created on first Get and
/// never destroyed, so returned references stay valid for the registry's
/// lifetime (the Global one leaks by design, like Failpoints).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is consulted only on first creation; empty selects
  /// Histogram::LatencyBoundsSeconds().
  Histogram& GetHistogram(const std::string& name,
                          std::span<const double> bounds = {});

  /// Point-in-time view of every registered metric, one merged read per
  /// metric. Renders and the windowed plane are built from this, so a
  /// histogram's count/sum/percentiles in one render always describe the
  /// same merged state.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot Snap() const;

  /// Prometheus text exposition format, metrics sorted by name.
  std::string RenderPrometheus() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///  p50,p95,p99}}} — deterministic key order.
  std::string RenderJson() const;

  /// Zeroes every registered metric (names and references survive).
  /// Inherits the per-metric Reset contract: exact only when quiesced.
  void Reset();

 private:
  // WindowedRegistry names mu_ in its acquired-before edge (§9.1:
  // WindowedRegistry::mu_ -> Registry::mu_).
  friend class WindowedRegistry;

  /// Leaf mutex (§9.1): registration only — never held while acquiring
  /// any other lock. Increments/reads of the metrics themselves are
  /// striped relaxed atomics and take no lock at all.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      VDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ VDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      VDB_GUARDED_BY(mu_);
};

/// RAII wall-clock timer feeding a latency histogram on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    hist_->Observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vdb

#endif  // VDB_CORE_TELEMETRY_H_
