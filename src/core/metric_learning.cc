#include "core/metric_learning.h"

#include <cmath>

#include "core/linalg.h"

namespace vdb {

Result<MetricSpec> LearnMahalanobis(
    const FloatMatrix& data,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& same_pairs,
    const MetricLearningOptions& opts) {
  if (data.empty()) return Status::InvalidArgument("empty data");
  if (same_pairs.empty()) return Status::InvalidArgument("no pairs");
  const std::size_t d = data.cols();

  // Within-class scatter of difference vectors.
  FloatMatrix diffs(same_pairs.size(), d);
  for (std::size_t p = 0; p < same_pairs.size(); ++p) {
    auto [i, j] = same_pairs[p];
    if (i >= data.rows() || j >= data.rows()) {
      return Status::OutOfRange("pair index out of range");
    }
    const float* a = data.row(i);
    const float* b = data.row(j);
    float* out = diffs.row(p);
    for (std::size_t t = 0; t < d; ++t) out[t] = a[t] - b[t];
  }
  FloatMatrix w = linalg::Covariance(diffs);

  std::vector<float> evals;
  FloatMatrix evecs;  // rows are eigenvectors
  if (!linalg::JacobiEigenSymmetric(w, &evals, &evecs)) {
    return Status::Internal("eigendecomposition failed");
  }

  // L = D^{-1/2} * E  so that L^T L = E^T D^{-1} E = (W + ridge I)^{-1}.
  FloatMatrix l(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    float lam = std::max(evals[r], 0.0f) + opts.ridge;
    float scale = 1.0f / std::sqrt(lam);
    for (std::size_t c = 0; c < d; ++c) l.at(r, c) = scale * evecs.at(r, c);
  }

  std::vector<float> flat(l.data(), l.data() + d * d);
  return MetricSpec::Mahalanobis(std::move(flat));
}

}  // namespace vdb
