#ifndef VDB_CORE_EVAL_H_
#define VDB_CORE_EVAL_H_

#include <cstddef>
#include <vector>

#include "core/distance.h"
#include "core/types.h"

namespace vdb {

/// Result-quality measurement (paper §2.1: "the quality of a result set is
/// measured using precision and recall") and exact ground-truth generation,
/// ANN-Benchmarks style.

/// Exact k-NN ground truth for each query row by brute force. Ids are the
/// row indices of `data`.
std::vector<std::vector<Neighbor>> GroundTruth(const FloatMatrix& data,
                                               const FloatMatrix& queries,
                                               const Scorer& scorer,
                                               std::size_t k);

/// recall@k of one result list against its ground-truth list: fraction of
/// true neighbors retrieved (ties beyond position k are not credited).
double RecallAt(const std::vector<Neighbor>& result,
                const std::vector<Neighbor>& truth, std::size_t k);

/// Mean recall@k across queries.
double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const std::vector<std::vector<Neighbor>>& truths,
                  std::size_t k);

/// Relative contrast of a query against a dataset:
/// (d_max - d_min) / d_min. Contrast tending to 0 as dim grows is the
/// curse-of-dimensionality diagnostic (paper §2.1 Score Selection).
double RelativeContrast(const FloatMatrix& data, const float* query,
                        const Scorer& scorer);

}  // namespace vdb

#endif  // VDB_CORE_EVAL_H_
