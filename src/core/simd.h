#ifndef VDB_CORE_SIMD_H_
#define VDB_CORE_SIMD_H_

#include <cstddef>

namespace vdb::simd {

/// Low-level similarity-projection kernels (paper §2.3(1): SIMD hardware
/// acceleration). Each kernel exists in a deliberately non-vectorized
/// scalar reference form and an AVX2/FMA form; `HasAvx2()` selects at run
/// time and `bench_simd` measures the gap.

/// True when the CPU supports AVX2 + FMA.
bool HasAvx2();

// -- Scalar reference kernels (compiled with auto-vectorization disabled
//    so they are an honest baseline). --------------------------------------
float L2SqScalar(const float* a, const float* b, std::size_t dim);
float InnerProductScalar(const float* a, const float* b, std::size_t dim);
float NormSqScalar(const float* a, std::size_t dim);

// -- AVX2 kernels. Fall back to scalar when AVX2 is unavailable. ----------
float L2SqAvx2(const float* a, const float* b, std::size_t dim);
float InnerProductAvx2(const float* a, const float* b, std::size_t dim);
float NormSqAvx2(const float* a, std::size_t dim);

// -- Dispatched entry points used by the rest of the library. -------------
float L2Sq(const float* a, const float* b, std::size_t dim);
float InnerProduct(const float* a, const float* b, std::size_t dim);
float NormSq(const float* a, std::size_t dim);

/// Batched asymmetric-distance (ADC) table accumulation: for `m` subspaces
/// with `ksub` centroids each, sums table[j][codes[j]] over j. `codes` are
/// uint8 PQ codes; `tables` is row-major (m x ksub).
float AdcLookupScalar(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub);
float AdcLookup(const float* tables, const unsigned char* codes,
                std::size_t m, std::size_t ksub);

/// Quick ADC / FastScan (André et al., the §2.3(1) SIMD-register-shuffle
/// technique): 4-bit PQ codes for a block of 32 vectors are scanned with
/// one in-register pshufb lookup per subquantizer, keeping the distance
/// tables resident in SIMD registers instead of L1.
///
/// Layout: `luts` is m x 16 uint8 (the per-subspace distance table,
/// quantized to bytes); `codes` is m x 32, one 4-bit code per byte (low
/// nibble), subquantizer-major. `out` receives 32 uint16 distance sums.
/// m must be <= 128 so sums cannot overflow uint16 (128 * 255 < 65536).
void QuickAdcBlockScalar(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out);
void QuickAdcBlockAvx2(const unsigned char* luts, const unsigned char* codes,
                       std::size_t m, unsigned short* out);
void QuickAdcBlock(const unsigned char* luts, const unsigned char* codes,
                   std::size_t m, unsigned short* out);

}  // namespace vdb::simd

#endif  // VDB_CORE_SIMD_H_
