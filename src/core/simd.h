#ifndef VDB_CORE_SIMD_H_
#define VDB_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace vdb::simd {

/// Low-level similarity-projection kernels (paper §2.3(1): SIMD hardware
/// acceleration). Each kernel exists in a deliberately non-vectorized
/// scalar reference form, an AVX2/FMA form, and an AVX-512 form; the
/// dispatched entry points select the widest tier the CPU supports at run
/// time and `bench_simd` measures the per-tier gap.
///
/// Contract for the tiered variants: within one tier, the batched kernels
/// accumulate per row in exactly the same order as the single-pair kernel
/// of that tier, so `XBatch*(q, ...)[i] == X(q, row_i, dim)` bit for bit.
/// Across tiers results agree only to float rounding (~1e-4 relative);
/// `tests/simd_dispatch_test.cc` pins both properties.

/// True when the CPU supports AVX2 + FMA.
bool HasAvx2();
/// True when the CPU supports AVX-512 (F + BW, the subsets used here).
bool HasAvx512();

/// Runtime-selected widest kernel tier.
enum class DispatchTier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
DispatchTier ActiveTier();
const char* TierName(DispatchTier tier);

// -- Scalar reference kernels (compiled with auto-vectorization disabled
//    so they are an honest baseline). --------------------------------------
float L2SqScalar(const float* a, const float* b, std::size_t dim);
float InnerProductScalar(const float* a, const float* b, std::size_t dim);
float NormSqScalar(const float* a, std::size_t dim);

// -- AVX2 kernels. Fall back to scalar when AVX2 is unavailable. ----------
float L2SqAvx2(const float* a, const float* b, std::size_t dim);
float InnerProductAvx2(const float* a, const float* b, std::size_t dim);
float NormSqAvx2(const float* a, std::size_t dim);

// -- AVX-512 kernels (16-wide FMA main loop, scalar tail). Compiled with
//    explicit target attributes so the portable build links them on any
//    machine; calling them on a CPU without AVX-512 is undefined — check
//    HasAvx512() (the dispatched entry points do). ------------------------
float L2SqAvx512(const float* a, const float* b, std::size_t dim);
float InnerProductAvx512(const float* a, const float* b, std::size_t dim);
float NormSqAvx512(const float* a, std::size_t dim);

// -- Dispatched entry points used by the rest of the library. -------------
float L2Sq(const float* a, const float* b, std::size_t dim);
float InnerProduct(const float* a, const float* b, std::size_t dim);
float NormSq(const float* a, std::size_t dim);

// ------------------------------------------------- one-query-vs-many batch
//
// The graph hot path scores a whole neighbor batch per expansion; the
// batched kernels amortize query-register loads over 4 rows and overlap
// the gather's memory latency with compute via software prefetch.
//
// Contiguous variant: rows = `rows + i*dim` for i in [0, n).
// Gather-by-id variant: row i = `base + ids[i]*dim` (the dense-index
// layout, where ids are internal node numbers into a row-major matrix).

void L2SqBatch(const float* q, const float* rows, std::size_t dim,
               std::size_t n, float* out);
void InnerProductBatch(const float* q, const float* rows, std::size_t dim,
                       std::size_t n, float* out);

void L2SqBatchGather(const float* q, const float* base, std::size_t dim,
                     const std::uint32_t* ids, std::size_t n, float* out);
void InnerProductBatchGather(const float* q, const float* base,
                             std::size_t dim, const std::uint32_t* ids,
                             std::size_t n, float* out);

// Per-tier gather variants, exposed for the dispatch-parity test and
// bench_simd's per-tier columns.
void L2SqBatchGatherScalar(const float* q, const float* base, std::size_t dim,
                           const std::uint32_t* ids, std::size_t n,
                           float* out);
void L2SqBatchGatherAvx2(const float* q, const float* base, std::size_t dim,
                         const std::uint32_t* ids, std::size_t n, float* out);
void L2SqBatchGatherAvx512(const float* q, const float* base, std::size_t dim,
                           const std::uint32_t* ids, std::size_t n,
                           float* out);
void InnerProductBatchGatherScalar(const float* q, const float* base,
                                   std::size_t dim, const std::uint32_t* ids,
                                   std::size_t n, float* out);
void InnerProductBatchGatherAvx2(const float* q, const float* base,
                                 std::size_t dim, const std::uint32_t* ids,
                                 std::size_t n, float* out);
void InnerProductBatchGatherAvx512(const float* q, const float* base,
                                   std::size_t dim, const std::uint32_t* ids,
                                   std::size_t n, float* out);

/// Batched asymmetric-distance (ADC) table accumulation: for `m` subspaces
/// with `ksub` centroids each, sums table[j][codes[j]] over j. `codes` are
/// uint8 PQ codes; `tables` is row-major (m x ksub).
float AdcLookupScalar(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub);
float AdcLookupAvx512(const float* tables, const unsigned char* codes,
                      std::size_t m, std::size_t ksub);
float AdcLookup(const float* tables, const unsigned char* codes,
                std::size_t m, std::size_t ksub);

/// Quick ADC / FastScan (André et al., the §2.3(1) SIMD-register-shuffle
/// technique): 4-bit PQ codes for a block of 32 vectors are scanned with
/// one in-register pshufb lookup per subquantizer, keeping the distance
/// tables resident in SIMD registers instead of L1.
///
/// Layout: `luts` is m x 16 uint8 (the per-subspace distance table,
/// quantized to bytes); `codes` is m x 32, one 4-bit code per byte (low
/// nibble), subquantizer-major. `out` receives 32 uint16 distance sums.
/// m must be <= 128 so sums cannot overflow uint16 (128 * 255 < 65536).
void QuickAdcBlockScalar(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out);
void QuickAdcBlockAvx2(const unsigned char* luts, const unsigned char* codes,
                       std::size_t m, unsigned short* out);
void QuickAdcBlockAvx512(const unsigned char* luts,
                         const unsigned char* codes, std::size_t m,
                         unsigned short* out);
void QuickAdcBlock(const unsigned char* luts, const unsigned char* codes,
                   std::size_t m, unsigned short* out);

// ------------------------------------------------------ software prefetch
//
// The only sanctioned spellings of __builtin_prefetch outside
// src/index/graph_util.h (tools/lint_vdb.py invariant 7): beam search and
// the batch kernels hide neighbor-expansion memory stalls behind these.

/// Prefetches `bytes` starting at `p` into cache, one line per 64 bytes.
inline void PrefetchBytes(const void* p, std::size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
}

/// Prefetches one float vector of `dim` elements.
inline void PrefetchFloats(const float* p, std::size_t dim) {
  PrefetchBytes(p, dim * sizeof(float));
}

}  // namespace vdb::simd

#endif  // VDB_CORE_SIMD_H_
