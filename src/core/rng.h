#ifndef VDB_CORE_RNG_H_
#define VDB_CORE_RNG_H_

#include <cstdint>
#include <random>

namespace vdb {

/// Seeded random source used across the library. All builds, generators and
/// randomized indexes take an explicit seed so every experiment is
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [0, n).
  std::uint64_t Next(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Standard normal sample.
  float NextGaussian() {
    return std::normal_distribution<float>(0.0f, 1.0f)(engine_);
  }

  /// Cauchy sample (p-stable family for p=1).
  float NextCauchy() {
    return std::cauchy_distribution<float>(0.0f, 1.0f)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vdb

#endif  // VDB_CORE_RNG_H_
