#ifndef VDB_CORE_TELEMETRY_WINDOW_H_
#define VDB_CORE_TELEMETRY_WINDOW_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <span>
#include <string>

#include "core/sync.h"
#include "core/telemetry.h"

namespace vdb {

/// Rolling time-windowed views over a Registry (the flight-recorder
/// observability plane's rate source). Lifetime metrics answer "how much
/// ever"; operations needs "how much in the last 10s/60s" — qps and tail
/// latency that *move* when the workload does.
///
/// Mechanism: a ring of boundary snapshots. `Tick(now)` is called from
/// any convenient periodic point (the serving event loop ticks every
/// ~20ms); whenever a window boundary has passed it records one
/// `Registry::Snap()` stamped with the boundary time. A read over the
/// last W seconds takes one live snapshot and subtracts the newest
/// boundary snapshot that is at least W old (`HistogramSnapshot::
/// DeltaSince` per histogram, clamped subtraction per counter) — which
/// is exactly the merge of every fixed-width window the ring closed in
/// [now-W, now] plus the live partial window, without per-slot delta
/// bookkeeping.
///
/// Edge semantics (tested in tests/windowed_metrics_test.cc):
///  - Idle windows: boundaries keep rotating with unchanged snapshots,
///    so deltas — and rates — decay to zero as traffic ages out.
///  - Clock step backward (suspend/settimeofday on a non-steady clock
///    injected in tests): the ring resets and re-seeds from `now`;
///    views report over the short history they have.
///  - Metric first seen mid-ring: absent from the baseline snapshot, so
///    its entire lifetime attributes to the current window until a
///    boundary containing it ages past W.
///  - Registry younger than W: the delta is taken against the oldest
///    boundary available and `seconds` reports the actual span covered,
///    so rates stay honest instead of diluted.
///
/// Locking: one mutex around the ring; `Tick` acquires it, then
/// `Registry::mu_` inside `Snap()`. Lock order (DESIGN.md §9):
/// WindowedRegistry::mu_ -> Registry::mu_. Reads copy snapshots out
/// under the mutex and do percentile math outside it.
class WindowedRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Width of one ring slot; boundaries land on multiples of this.
    std::chrono::milliseconds width{1000};
    /// Retained boundary count; history covers width * slots (120s
    /// default — enough for the 10s and 60s views plus slack).
    std::size_t slots = 120;
  };

  explicit WindowedRegistry(Registry& registry);
  WindowedRegistry(Registry& registry, Options opts);
  WindowedRegistry(const WindowedRegistry&) = delete;
  WindowedRegistry& operator=(const WindowedRegistry&) = delete;

  /// Process-wide instance over Registry::Global().
  static WindowedRegistry& Global();

  /// Rotate: record boundary snapshots for every window edge crossed
  /// since the last call. Cheap no-op when no edge has passed. Safe to
  /// call concurrently; callers race only for who records the boundary.
  void Tick(Clock::time_point now = Clock::now());

  /// Windowed counter view: events in the last `seconds` seconds.
  struct CounterWindow {
    std::uint64_t delta = 0;  ///< events inside the window
    /// Actual span covered: up to one slot width more than requested
    /// (the baseline lands on a boundary), or less when the registry is
    /// younger than the window.
    double seconds = 0.0;
    double RatePerSec() const { return seconds > 0.0 ? delta / seconds : 0.0; }
  };

  /// Windowed histogram view: distribution of the last `seconds` only.
  struct HistogramWindow {
    HistogramSnapshot delta;  ///< in-window buckets + sum
    double seconds = 0.0;
    std::uint64_t Count() const { return delta.TotalCount(); }
    double RatePerSec() const {
      return seconds > 0.0 ? static_cast<double>(Count()) / seconds : 0.0;
    }
  };

  /// View of one counter over the trailing `window_seconds`. Unknown
  /// names yield an empty view (delta 0), never a registration.
  CounterWindow CounterOver(const std::string& name, double window_seconds,
                            Clock::time_point now = Clock::now()) const;
  /// Same, against a live snapshot the caller already took (one
  /// Registry::Snap() amortized across many metric reads).
  CounterWindow CounterOver(const Registry::Snapshot& live,
                            const std::string& name, double window_seconds,
                            Clock::time_point now = Clock::now()) const;

  HistogramWindow HistogramOver(const std::string& name, double window_seconds,
                                Clock::time_point now = Clock::now()) const;
  HistogramWindow HistogramOver(const Registry::Snapshot& live,
                                const std::string& name, double window_seconds,
                                Clock::time_point now = Clock::now()) const;

  /// Prometheus recording-rule-style render for every registered metric
  /// over each requested window, e.g. for windows {10, 60}:
  ///   vdb_queries_total:rate{window="10s"} 12.5
  ///   vdb_query_seconds:p95{window="60s"} 0.0042
  /// Labeled metrics merge the window label into their existing label
  /// set. Counter -> :rate; histogram -> :rate, :p50, :p95, :p99.
  /// Gauges are instantaneous and have no windowed form.
  std::string RenderPrometheus(std::span<const double> windows_seconds,
                               Clock::time_point now = Clock::now()) const;

  /// {"windows":{"10s":{"counters":{name:{"delta":..,"rate":..}},
  ///  "histograms":{name:{"count":..,"rate":..,"p50":..,"p95":..,
  ///  "p99":..}}},...}} — deterministic key order.
  std::string RenderJson(std::span<const double> windows_seconds,
                         Clock::time_point now = Clock::now()) const;

  /// Drop all history and re-seed from `now` (tests; also the clock-step
  /// recovery path).
  void ResetForTest(Clock::time_point now = Clock::now());

 private:
  struct Boundary {
    Clock::time_point at;
    Registry::Snapshot snap;
  };

  /// Newest boundary at least `window_seconds` older than `now`, or the
  /// oldest available. Returns false when the ring is empty.
  bool BaselineFor(double window_seconds, Clock::time_point now,
                   Boundary* out) const;

  Registry& registry_;
  Options opts_;
  /// §9.1 edge: held across registry_.Snap(), which takes
  /// Registry::mu_ — so this mutex is always the outer of the pair.
  mutable Mutex mu_ VDB_ACQUIRED_BEFORE(registry_.mu_);
  std::deque<Boundary> ring_ VDB_GUARDED_BY(mu_);  ///< oldest front
  /// First edge not yet recorded.
  Clock::time_point next_boundary_ VDB_GUARDED_BY(mu_);
  /// Construction / last reset time.
  Clock::time_point origin_ VDB_GUARDED_BY(mu_);
};

}  // namespace vdb

#endif  // VDB_CORE_TELEMETRY_WINDOW_H_
