#ifndef VDB_CORE_AGGREGATE_H_
#define VDB_CORE_AGGREGATE_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "core/status.h"

namespace vdb {

/// Aggregate scores (paper §2.1): combine the scores of multiple
/// query/entity vector pairs into a single scalar that can be compared.
/// Operates on the internal distance convention (lower is better).
enum class AggregateKind {
  kMean,        ///< arithmetic mean of the pair distances
  kWeightedSum, ///< dot product with user weights
  kMin,         ///< best single pair (optimistic match)
  kMax,         ///< worst single pair (conservative match)
};

/// Combines per-pair distances into one entity-level distance.
class Aggregator {
 public:
  static Result<Aggregator> Create(AggregateKind kind,
                                   std::vector<float> weights = {}) {
    if (kind == AggregateKind::kWeightedSum && weights.empty()) {
      return Status::InvalidArgument("weighted sum requires weights");
    }
    Aggregator a;
    a.kind_ = kind;
    a.weights_ = std::move(weights);
    return a;
  }

  AggregateKind kind() const { return kind_; }

  float Combine(const std::vector<float>& dists) const {
    if (dists.empty()) return std::numeric_limits<float>::infinity();
    switch (kind_) {
      case AggregateKind::kMean: {
        float sum = std::accumulate(dists.begin(), dists.end(), 0.0f);
        return sum / static_cast<float>(dists.size());
      }
      case AggregateKind::kWeightedSum: {
        float sum = 0.0f;
        std::size_t n = std::min(dists.size(), weights_.size());
        for (std::size_t i = 0; i < n; ++i) sum += dists[i] * weights_[i];
        return sum;
      }
      case AggregateKind::kMin:
        return *std::min_element(dists.begin(), dists.end());
      case AggregateKind::kMax:
        return *std::max_element(dists.begin(), dists.end());
    }
    return std::numeric_limits<float>::infinity();
  }

 private:
  AggregateKind kind_ = AggregateKind::kMean;
  std::vector<float> weights_;
};

}  // namespace vdb

#endif  // VDB_CORE_AGGREGATE_H_
