#include "core/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vdb::linalg {

FloatMatrix MatMul(const FloatMatrix& a, const FloatMatrix& b) {
  FloatMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

FloatMatrix Transpose(const FloatMatrix& a) {
  FloatMatrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

void MatVec(const FloatMatrix& a, const float* x, float* y) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = static_cast<float>(acc);
  }
}

std::vector<float> ColumnMeans(const FloatMatrix& data) {
  std::vector<double> sums(data.cols(), 0.0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const float* row = data.row(i);
    for (std::size_t j = 0; j < data.cols(); ++j) sums[j] += row[j];
  }
  std::vector<float> means(data.cols());
  double inv = data.rows() ? 1.0 / static_cast<double>(data.rows()) : 0.0;
  for (std::size_t j = 0; j < data.cols(); ++j)
    means[j] = static_cast<float>(sums[j] * inv);
  return means;
}

FloatMatrix Covariance(const FloatMatrix& data) {
  const std::size_t n = data.rows(), d = data.cols();
  std::vector<float> mean = ColumnMeans(data);
  FloatMatrix cov(d, d);
  if (n < 2) return cov;
  // Accumulate in double to stay stable for large n.
  std::vector<double> acc(d * d, 0.0);
  std::vector<double> centered(d);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (std::size_t j = 0; j < d; ++j) centered[j] = row[j] - mean[j];
    for (std::size_t j = 0; j < d; ++j) {
      double cj = centered[j];
      for (std::size_t k = j; k < d; ++k) acc[j * d + k] += cj * centered[k];
    }
  }
  double inv = 1.0 / static_cast<double>(n - 1);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = j; k < d; ++k) {
      float v = static_cast<float>(acc[j * d + k] * inv);
      cov.at(j, k) = v;
      cov.at(k, j) = v;
    }
  }
  return cov;
}

bool JacobiEigenSymmetric(const FloatMatrix& a, std::vector<float>* eigenvalues,
                          FloatMatrix* eigenvectors, int max_sweeps) {
  if (a.rows() != a.cols()) return false;
  const std::size_t d = a.rows();
  // Work in double for convergence.
  std::vector<double> m(d * d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) m[i * d + j] = a.at(i, j);
  std::vector<double> v(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) v[i * d + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < d; ++p)
      for (std::size_t q = p + 1; q < d; ++q) off += m[p * d + q] * m[p * d + q];
    if (off < 1e-18) break;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        double apq = m[p * d + q];
        if (std::fabs(apq) < 1e-30) continue;
        double app = m[p * d + p], aqq = m[q * d + q];
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Rotate rows/cols p and q of m.
        for (std::size_t k = 0; k < d; ++k) {
          double mkp = m[k * d + p], mkq = m[k * d + q];
          m[k * d + p] = c * mkp - s * mkq;
          m[k * d + q] = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < d; ++k) {
          double mpk = m[p * d + k], mqk = m[q * d + k];
          m[p * d + k] = c * mpk - s * mqk;
          m[q * d + k] = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors (as columns of v).
        for (std::size_t k = 0; k < d; ++k) {
          double vkp = v[k * d + p], vkq = v[k * d + q];
          v[k * d + p] = c * vkp - s * vkq;
          v[k * d + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m[x * d + x] > m[y * d + y];
  });

  eigenvalues->resize(d);
  *eigenvectors = FloatMatrix(d, d);
  for (std::size_t r = 0; r < d; ++r) {
    std::size_t src = order[r];
    (*eigenvalues)[r] = static_cast<float>(m[src * d + src]);
    for (std::size_t k = 0; k < d; ++k)
      eigenvectors->at(r, k) = static_cast<float>(v[k * d + src]);
  }
  return true;
}

PcaResult Pca(const FloatMatrix& data, std::size_t num_components) {
  PcaResult result;
  result.mean = ColumnMeans(data);
  FloatMatrix cov = Covariance(data);
  std::vector<float> evals;
  FloatMatrix evecs;
  JacobiEigenSymmetric(cov, &evals, &evecs);
  std::size_t keep = std::min(num_components, data.cols());
  result.components = FloatMatrix(keep, data.cols());
  result.variances.assign(evals.begin(), evals.begin() + keep);
  for (std::size_t r = 0; r < keep; ++r) {
    for (std::size_t j = 0; j < data.cols(); ++j)
      result.components.at(r, j) = evecs.at(r, j);
  }
  return result;
}

FloatMatrix RandomOrthonormal(std::size_t d, Rng* rng) {
  FloatMatrix q(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    float* row = q.row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] = rng->NextGaussian();
    // Gram–Schmidt against previous rows.
    for (std::size_t p = 0; p < i; ++p) {
      const float* prev = q.row(p);
      double dot = 0.0;
      for (std::size_t j = 0; j < d; ++j) dot += row[j] * prev[j];
      for (std::size_t j = 0; j < d; ++j)
        row[j] -= static_cast<float>(dot) * prev[j];
    }
    double norm = 0.0;
    for (std::size_t j = 0; j < d; ++j) norm += row[j] * row[j];
    norm = std::sqrt(std::max(norm, 1e-20));
    for (std::size_t j = 0; j < d; ++j)
      row[j] = static_cast<float>(row[j] / norm);
  }
  return q;
}

void Project(const FloatMatrix& basis, const float* x, float* out) {
  MatVec(basis, x, out);
}

}  // namespace vdb::linalg
