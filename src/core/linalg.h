#ifndef VDB_CORE_LINALG_H_
#define VDB_CORE_LINALG_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"
#include "core/types.h"

namespace vdb::linalg {

/// Small dense linear-algebra helpers used by the learned-partitioning
/// substrates: PCA trees, OPQ rotations, and Mahalanobis metric learning.
/// Sized for dim <= ~1024; everything is O(d^2)–O(d^3) and exact.

/// c = a * b for row-major (n x k) * (k x m).
FloatMatrix MatMul(const FloatMatrix& a, const FloatMatrix& b);

/// Row-major transpose.
FloatMatrix Transpose(const FloatMatrix& a);

/// y = A * x for row-major (n x d) matrix and length-d vector.
void MatVec(const FloatMatrix& a, const float* x, float* y);

/// Column means of an (n x d) data matrix.
std::vector<float> ColumnMeans(const FloatMatrix& data);

/// Sample covariance matrix (d x d) of the rows of `data`.
FloatMatrix Covariance(const FloatMatrix& data);

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
/// On return `eigenvalues` are descending and `eigenvectors` holds the
/// corresponding eigenvectors as ROWS. Returns false if `a` is not square.
bool JacobiEigenSymmetric(const FloatMatrix& a,
                          std::vector<float>* eigenvalues,
                          FloatMatrix* eigenvectors,
                          int max_sweeps = 64);

/// Result of a principal component analysis.
struct PcaResult {
  std::vector<float> mean;       ///< column means subtracted before analysis
  FloatMatrix components;        ///< num_components x d, rows orthonormal
  std::vector<float> variances;  ///< explained variance per component
};

/// PCA of `data` keeping the top `num_components` axes.
PcaResult Pca(const FloatMatrix& data, std::size_t num_components);

/// Random orthonormal d x d matrix (rows orthonormal) via Gram–Schmidt on
/// a Gaussian matrix — used to initialize OPQ and for random rotations.
FloatMatrix RandomOrthonormal(std::size_t d, Rng* rng);

/// Projects `x` (length d) onto each row of `basis`, writing
/// `basis.rows()` coefficients into `out`.
void Project(const FloatMatrix& basis, const float* x, float* out);

}  // namespace vdb::linalg

#endif  // VDB_CORE_LINALG_H_
