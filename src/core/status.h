#ifndef VDB_CORE_STATUS_H_
#define VDB_CORE_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace vdb {

/// Error codes returned across all public API boundaries. The library does
/// not throw exceptions; fallible operations return `Status` or
/// `Result<T>` (RocksDB-style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,  ///< transient overload — retry later (serving layer)
};

/// Lightweight success/error carrier. Cheap to copy when OK (no message).
///
/// `[[nodiscard]]`: a dropped Status is a swallowed failure, so every
/// function returning one must have its result checked (or explicitly
/// voided with a reason — grep for `(void)` casts). Enforced as an error
/// under the default-on `VDB_WERROR` build option.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status Unsupported(std::string_view msg) {
    return Status(StatusCode::kUnsupported, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

  /// Canonical upper-snake name for a code ("DEADLINE_EXCEEDED"). These
  /// match the wire verdict names (src/net/protocol.h) and are what the
  /// flight recorder stores as a query's verdict.
  static std::string_view CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kUnsupported: return "UNSUPPORTED";
      case StatusCode::kCorruption: return "CORRUPTION";
      case StatusCode::kIoError: return "IO_ERROR";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
    }
    return "UNKNOWN";
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error. `value()` asserts the result is OK; check `ok()` (or
/// `status()`) first on fallible paths. `[[nodiscard]]` like Status: a
/// dropped Result hides both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return value_;
  }
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status from an expression to the caller.
#define VDB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::vdb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression; assigns the value on success,
/// propagates the Status on failure.
#define VDB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto VDB_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!VDB_CONCAT_(_res_, __LINE__).ok())        \
    return VDB_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(VDB_CONCAT_(_res_, __LINE__)).value()

#define VDB_CONCAT_INNER_(a, b) a##b
#define VDB_CONCAT_(a, b) VDB_CONCAT_INNER_(a, b)

}  // namespace vdb

#endif  // VDB_CORE_STATUS_H_
