#include "core/distance.h"

#include <cmath>

#include "core/simd.h"
#include "core/telemetry.h"

namespace vdb {

namespace {

// Rows scored through the one-query-vs-many batch kernels, by tier; the
// gauge exposes which dispatch tier the process selected (0 scalar,
// 1 avx2, 2 avx512) so a fleet dashboard can spot hosts running narrow.
Counter& BatchRowsCounter() {
  static Counter& c =
      Registry::Global().GetCounter("vdb_simd_batch_rows_total");
  return c;
}

void PublishDispatchTier() {
  static const bool once = [] {
    Registry::Global()
        .GetGauge("vdb_simd_dispatch_tier")
        .Set(static_cast<std::int64_t>(simd::ActiveTier()));
    return true;
  }();
  (void)once;
}

}  // namespace

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2: return "l2";
    case Metric::kInnerProduct: return "ip";
    case Metric::kCosine: return "cosine";
    case Metric::kHamming: return "hamming";
    case Metric::kMinkowski: return "minkowski";
    case Metric::kMahalanobis: return "mahalanobis";
  }
  return "unknown";
}

Result<Scorer> Scorer::Create(const MetricSpec& spec, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  Scorer s;
  s.dim_ = dim;
  s.spec_ = spec;
  switch (spec.metric) {
    case Metric::kL2:
      s.fn_ = &L2Fn;
      break;
    case Metric::kInnerProduct:
      s.fn_ = &IpFn;
      break;
    case Metric::kCosine:
      s.fn_ = &CosineFn;
      break;
    case Metric::kHamming:
      s.fn_ = &HammingFn;
      break;
    case Metric::kMinkowski:
      if (spec.minkowski_p <= 0.0f) {
        return Status::InvalidArgument("minkowski_p must be > 0");
      }
      s.fn_ = &MinkowskiFn;
      break;
    case Metric::kMahalanobis:
      if (!spec.mahalanobis_l.empty() &&
          spec.mahalanobis_l.size() != dim * dim) {
        return Status::InvalidArgument(
            "mahalanobis_l must be dim*dim (or empty for identity)");
      }
      s.fn_ = &MahalanobisFn;
      break;
  }
  return s;
}

void Scorer::DistanceBatch(const float* query, const float* base,
                           const std::uint32_t* ids, std::size_t n,
                           float* out) const {
  if (n == 0) return;
  PublishDispatchTier();
  BatchRowsCounter().Inc(n);
  switch (spec_.metric) {
    case Metric::kL2:
      simd::L2SqBatchGather(query, base, dim_, ids, n, out);
      return;
    case Metric::kInnerProduct:
      simd::InnerProductBatchGather(query, base, dim_, ids, n, out);
      for (std::size_t i = 0; i < n; ++i) out[i] = -out[i];
      return;
    default:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = fn_(*this, query, base + std::size_t{ids[i]} * dim_);
      }
      return;
  }
}

float Scorer::ToUserScore(float dist) const {
  switch (spec_.metric) {
    case Metric::kInnerProduct: return -dist;
    case Metric::kCosine: return 1.0f - dist;
    default: return dist;
  }
}

bool Scorer::IsTrueMetric() const {
  switch (spec_.metric) {
    case Metric::kL2:
    case Metric::kHamming:
    case Metric::kMahalanobis:
      return true;
    case Metric::kMinkowski:
      return spec_.minkowski_p >= 1.0f;
    case Metric::kInnerProduct:
    case Metric::kCosine:
      return false;
  }
  return false;
}

float Scorer::L2Fn(const Scorer& s, const float* a, const float* b) {
  return simd::L2Sq(a, b, s.dim_);
}

float Scorer::IpFn(const Scorer& s, const float* a, const float* b) {
  return -simd::InnerProduct(a, b, s.dim_);
}

float Scorer::CosineFn(const Scorer& s, const float* a, const float* b) {
  float ip = simd::InnerProduct(a, b, s.dim_);
  float na = simd::NormSq(a, s.dim_);
  float nb = simd::NormSq(b, s.dim_);
  if (na <= 0.0f || nb <= 0.0f) return 1.0f;  // zero vector: orthogonal-ish
  return 1.0f - ip / std::sqrt(na * nb);
}

float Scorer::HammingFn(const Scorer& s, const float* a, const float* b) {
  // Feature vectors are binarized per dimension at 0.5 (the SQ-style bit
  // representation the paper mentions for Hamming workloads).
  int diff = 0;
  for (std::size_t i = 0; i < s.dim_; ++i) {
    diff += (a[i] >= 0.5f) != (b[i] >= 0.5f);
  }
  return static_cast<float>(diff);
}

float Scorer::MinkowskiFn(const Scorer& s, const float* a, const float* b) {
  float p = s.spec_.minkowski_p;
  double acc = 0.0;
  for (std::size_t i = 0; i < s.dim_; ++i) {
    acc += std::pow(std::fabs(static_cast<double>(a[i]) - b[i]), p);
  }
  return static_cast<float>(std::pow(acc, 1.0 / p));
}

float Scorer::MahalanobisFn(const Scorer& s, const float* a, const float* b) {
  const std::size_t d = s.dim_;
  const auto& l = s.spec_.mahalanobis_l;
  if (l.empty()) return std::sqrt(simd::L2Sq(a, b, d));
  // dist = || L (a - b) ||; computed row-by-row to stay allocation-free.
  double acc = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const float* row = l.data() + i * d;
    double dot = 0.0;
    for (std::size_t j = 0; j < d; ++j) dot += row[j] * (a[j] - b[j]);
    acc += dot * dot;
  }
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace vdb
