#ifndef VDB_CORE_SYNC_H_
#define VDB_CORE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace vdb {

/// Compiler-enforced lock discipline (DESIGN.md §9.1). Every mutex in
/// src/ is one of the wrappers below, every guarded field carries
/// VDB_GUARDED_BY, and every "caller holds the lock" private method
/// carries VDB_REQUIRES — so Clang Thread Safety Analysis
/// (-Wthread-safety -Werror, the `thread-safety` CI job) rejects
/// unlocked reads, lock-order inversions against the §9.1 table, and
/// leaked scoped locks at compile time. The VDBMS bug study
/// (arXiv 2506.02617) ranks concurrency defects among the least
/// reproducible classes; this moves their detection from TSan's
/// schedule-dependent runtime net to a deterministic compile-time gate.
///
/// Under GCC (and any non-Clang compiler) every macro expands to
/// nothing and the wrappers compile down to the std types they hold, so
/// codegen and behaviour are identical across toolchains — the
/// annotations cost nothing where they cannot be checked.
///
/// Conventions:
///  - Fields: `T x VDB_GUARDED_BY(mu_);` (pointer pointees:
///    VDB_PT_GUARDED_BY).
///  - "Locked" private methods: `void FooLocked() VDB_REQUIRES(mu_);`.
///  - Lock order: the *outer* mutex member declares
///    `VDB_ACQUIRED_BEFORE(inner_)`; the §9.1 table is the
///    source of truth and every edge there appears as an annotation.
///  - Deliberate escape hatches (single-threaded phases, loop-thread
///    ownership) use VDB_NO_THREAD_SAFETY_ANALYSIS with a comment
///    saying who guarantees exclusion.

#if defined(__clang__)
#define VDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VDB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// A type that is a lock (vdb::Mutex / vdb::SharedMutex below).
#define VDB_CAPABILITY(x) VDB_THREAD_ANNOTATION(capability(x))

/// An RAII type whose lifetime equals a hold of some capability.
#define VDB_SCOPED_CAPABILITY VDB_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be touched while holding `x`.
#define VDB_GUARDED_BY(x) VDB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer/smart-pointer field whose *pointee* is protected by `x`
/// (the pointer value itself may be read freely).
#define VDB_PT_GUARDED_BY(x) VDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively / shared).
#define VDB_REQUIRES(...) \
  VDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VDB_REQUIRES_SHARED(...) \
  VDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define VDB_ACQUIRE(...) VDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VDB_ACQUIRE_SHARED(...) \
  VDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VDB_RELEASE(...) VDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VDB_RELEASE_SHARED(...) \
  VDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define VDB_TRY_ACQUIRE(...) \
  VDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (self-deadlock guard).
#define VDB_EXCLUDES(...) VDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-order edges (DESIGN.md §9.1): declared on the mutex members
/// themselves. Checked under -Wthread-safety-beta.
#define VDB_ACQUIRED_BEFORE(...) \
  VDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VDB_ACQUIRED_AFTER(...) \
  VDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability (accessor
/// pattern for cross-class lock-order edges).
#define VDB_RETURN_CAPABILITY(x) VDB_THREAD_ANNOTATION(lock_returned(x))

/// Assert (at runtime trust, not by acquisition) that the capability is
/// held — for callbacks invoked under a lock taken elsewhere.
#define VDB_ASSERT_CAPABILITY(x) \
  VDB_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis. Requires a comment naming the
/// exclusion guarantee (e.g. "loop-thread-owned", "callers serialize").
#define VDB_NO_THREAD_SAFETY_ANALYSIS \
  VDB_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Annotated exclusive mutex. Same semantics and cost as the
/// `std::mutex` it wraps; the capability attribute is what lets the
/// analysis track holds across VDB_GUARDED_BY / VDB_REQUIRES sites.
class VDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VDB_ACQUIRE() { mu_.lock(); }
  void Unlock() VDB_RELEASE() { mu_.unlock(); }
  bool TryLock() VDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex over `std::shared_mutex`.
class VDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() VDB_ACQUIRE() { mu_.lock(); }
  void Unlock() VDB_RELEASE() { mu_.unlock(); }
  void ReaderLock() VDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() VDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive hold of a Mutex (the repo's `std::lock_guard`
/// replacement). Non-movable: the hold spans exactly this scope.
class VDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() VDB_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive hold of a SharedMutex (writer side).
class VDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) VDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() VDB_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared hold of a SharedMutex (reader side).
class VDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) VDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderLock() VDB_RELEASE() { mu_.ReaderUnlock(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable usable with vdb::Mutex. Wait takes the Mutex the
/// caller already holds (VDB_REQUIRES keeps the analysis aware the hold
/// survives the wait). There is no predicate-lambda overload on
/// purpose: TSA analyzes lambdas as separate functions with no
/// capability context, so predicates reading guarded state must be
/// written as explicit `while (!pred) cv.Wait(mu);` loops in the
/// annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires `mu` before return.
  void Wait(Mutex& mu) VDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // hold passes back to the caller's scope
  }

  /// Timed wait; returns false on timeout (lock is held either way).
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      VDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_until(lk, deadline) == std::cv_status::no_timeout;
    lk.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vdb

#endif  // VDB_CORE_SYNC_H_
