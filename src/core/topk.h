#ifndef VDB_CORE_TOPK_H_
#define VDB_CORE_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/types.h"

namespace vdb {

/// Bounded max-heap keeping the k smallest-distance neighbors seen so far.
/// This is the "Sort / Top-K" operator of the paper's Figure 1: composing
/// it with similarity projection answers a k-NN query.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k + 1); }

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Largest (worst) distance currently kept; +inf when not yet full.
  float WorstDist() const {
    return full() ? heap_.front().dist
                  : std::numeric_limits<float>::infinity();
  }

  /// Returns true if the candidate was kept.
  bool Push(VectorId id, float dist) {
    if (heap_.size() < k_) {
      heap_.push_back({id, dist});
      std::push_heap(heap_.begin(), heap_.end(), ByDist);
      return true;
    }
    if (dist >= heap_.front().dist) return false;
    std::pop_heap(heap_.begin(), heap_.end(), ByDist);
    heap_.back() = {id, dist};
    std::push_heap(heap_.begin(), heap_.end(), ByDist);
    return true;
  }

  /// Destructively extracts results sorted by ascending distance.
  std::vector<Neighbor> Take() {
    std::sort_heap(heap_.begin(), heap_.end(), ByDist);
    return std::move(heap_);
  }

 private:
  static bool ByDist(const Neighbor& a, const Neighbor& b) { return a < b; }

  std::size_t k_;
  std::vector<Neighbor> heap_;
};

/// Merges several per-source top-k lists (each ascending) into one global
/// ascending top-k — the scatter-gather reduce step for distributed search
/// and LSM segment search.
inline std::vector<Neighbor> MergeTopK(
    const std::vector<std::vector<Neighbor>>& parts, std::size_t k) {
  TopK top(k);
  for (const auto& part : parts) {
    for (const auto& n : part) top.Push(n.id, n.dist);
  }
  return top.Take();
}

}  // namespace vdb

#endif  // VDB_CORE_TOPK_H_
