#ifndef VDB_CORE_METRIC_LEARNING_H_
#define VDB_CORE_METRIC_LEARNING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/status.h"
#include "core/types.h"

namespace vdb {

/// Learned similarity scores (paper §2.1 "Score Design": metric learning).
/// Learns a Mahalanobis factor L such that distances shrink along
/// directions of within-entity variation: M = (W + eps*I)^-1 where W is
/// the covariance of the difference vectors of `same_pairs` (pairs known to
/// be semantically identical). This is the classic "whitening the
/// within-class scatter" metric learner.
struct MetricLearningOptions {
  float ridge = 1e-3f;  ///< regularizer added to W's eigenvalues
};

/// Returns a MetricSpec with `metric == kMahalanobis` whose factor L
/// satisfies L^T L = (W + ridge*I)^-1 (computed via eigendecomposition).
Result<MetricSpec> LearnMahalanobis(
    const FloatMatrix& data,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& same_pairs,
    const MetricLearningOptions& opts = {});

}  // namespace vdb

#endif  // VDB_CORE_METRIC_LEARNING_H_
