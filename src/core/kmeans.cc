#include "core/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/simd.h"
#include "core/topk.h"

namespace vdb {

namespace {

// k-means++ seeding: each next seed is drawn proportionally to squared
// distance from the closest already-chosen seed.
FloatMatrix SeedPlusPlus(const FloatMatrix& data, std::size_t k, Rng* rng) {
  const std::size_t n = data.rows(), d = data.cols();
  FloatMatrix centroids(k, d);
  std::size_t first = rng->Next(n);
  std::copy_n(data.row(first), d, centroids.row(0));

  std::vector<double> best_dist(n, std::numeric_limits<double>::max());
  for (std::size_t c = 1; c < k; ++c) {
    const float* prev = centroids.row(c - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double dist = simd::L2Sq(data.row(i), prev, d);
      best_dist[i] = std::min(best_dist[i], dist);
      total += best_dist[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double r = rng->NextDouble() * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += best_dist[i];
        if (acc >= r) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng->Next(n);
    }
    std::copy_n(data.row(pick), d, centroids.row(c));
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const FloatMatrix& data,
                            const KMeansOptions& opts) {
  const std::size_t n = data.rows(), d = data.cols();
  if (n == 0) return Status::InvalidArgument("kmeans: empty data");
  if (opts.k == 0) return Status::InvalidArgument("kmeans: k must be > 0");
  const std::size_t k = std::min(opts.k, n);

  Rng rng(opts.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(data, k, &rng);
  result.assignments.assign(n, 0);

  std::vector<double> sums(k * d);
  std::vector<std::size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int iter = 0; iter < opts.max_iters; ++iter) {
    result.iters_run = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* x = data.row(i);
      double best = std::numeric_limits<double>::max();
      std::uint32_t arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double dist = simd::L2Sq(x, result.centroids.row(c), d);
        if (dist < best) {
          best = dist;
          arg = static_cast<std::uint32_t>(c);
        }
      }
      result.assignments[i] = arg;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t c = result.assignments[i];
      const float* x = data.row(i);
      double* s = sums.data() + static_cast<std::size_t>(c) * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += x[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        if (opts.reseed_empty) {
          // Re-seed from a random member of the most populated cluster.
          std::size_t big = static_cast<std::size_t>(
              std::max_element(counts.begin(), counts.end()) - counts.begin());
          std::vector<std::size_t> members;
          for (std::size_t i = 0; i < n; ++i)
            if (result.assignments[i] == big) members.push_back(i);
          if (!members.empty()) {
            std::size_t pick = members[rng.Next(members.size())];
            std::copy_n(data.row(pick), d, result.centroids.row(c));
          }
        }
        continue;
      }
      float* cen = result.centroids.row(c);
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* s = sums.data() + c * d;
      for (std::size_t j = 0; j < d; ++j)
        cen[j] = static_cast<float>(s[j] * inv);
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      double rel = prev_inertia > 0.0
                       ? (prev_inertia - inertia) / prev_inertia
                       : 0.0;
      if (rel >= 0.0 && rel < opts.tol) break;
    }
    prev_inertia = inertia;
  }

  // Final assignment so assignments match the returned centroids.
  double inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* x = data.row(i);
    double best = std::numeric_limits<double>::max();
    std::uint32_t arg = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double dist = simd::L2Sq(x, result.centroids.row(c), d);
      if (dist < best) {
        best = dist;
        arg = static_cast<std::uint32_t>(c);
      }
    }
    result.assignments[i] = arg;
    inertia += best;
  }
  result.inertia = inertia;
  return result;
}

std::uint32_t NearestCentroid(const FloatMatrix& centroids, const float* x) {
  double best = std::numeric_limits<double>::max();
  std::uint32_t arg = 0;
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    double dist = simd::L2Sq(x, centroids.row(c), centroids.cols());
    if (dist < best) {
      best = dist;
      arg = static_cast<std::uint32_t>(c);
    }
  }
  return arg;
}

std::vector<std::uint32_t> NearestCentroids(const FloatMatrix& centroids,
                                            const float* x, std::size_t n) {
  TopK top(std::min(n, centroids.rows()));
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    top.Push(static_cast<VectorId>(c),
             simd::L2Sq(x, centroids.row(c), centroids.cols()));
  }
  std::vector<std::uint32_t> out;
  for (const auto& nb : top.Take())
    out.push_back(static_cast<std::uint32_t>(nb.id));
  return out;
}

}  // namespace vdb
