#ifndef VDB_CORE_SYNTHETIC_H_
#define VDB_CORE_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace vdb {

/// Synthetic workload generators. These substitute for the real image /
/// text / audio descriptor datasets used by ANN-Benchmarks (see DESIGN.md
/// §3 "Substitutions"): ANN index behaviour is driven by intrinsic
/// dimensionality and cluster structure, which these generators control
/// explicitly and reproducibly (seeded).
struct SyntheticOptions {
  std::size_t n = 10000;
  std::size_t dim = 32;
  std::uint64_t seed = 42;
  /// Gaussian-mixture parameters.
  std::size_t num_clusters = 32;
  float cluster_std = 0.15f;  ///< spread within a cluster (centers in unit cube)
};

/// i.i.d. uniform [0,1)^dim — the worst-case, structure-free workload
/// (exhibits the curse of dimensionality most strongly).
FloatMatrix UniformCube(const SyntheticOptions& opts);

/// Gaussian mixture: `num_clusters` centers uniform in the unit cube, each
/// point sampled from an isotropic Gaussian around a random center. This is
/// the embedding-like workload (learned embeddings cluster by semantics).
FloatMatrix GaussianClusters(const SyntheticOptions& opts);

/// Points uniform on the unit hypersphere — normalized-embedding (angular /
/// cosine) workload.
FloatMatrix UnitSphere(const SyntheticOptions& opts);

/// Queries drawn from the same distribution as `GaussianClusters` but from
/// *different* random centers — the out-of-distribution query workload that
/// stresses learned partitionings (paper §2.2: L2H "cannot easily handle
/// out-of-distribution updates").
FloatMatrix OutOfDistributionQueries(const SyntheticOptions& opts,
                                     std::size_t num_queries);

/// Queries sampled near dataset points (perturbed members) — the in-
/// distribution query workload used for most experiments.
FloatMatrix PerturbedQueries(const FloatMatrix& data, std::size_t num_queries,
                             float noise_std, std::uint64_t seed);

/// Attribute column correlated with the vector geometry: the attribute is
/// the cluster id of each point, plus a uniform numeric column. Used by the
/// hybrid-query experiments (selectivity vs geometry correlation matters
/// for block-first vs visit-first scan).
struct HybridWorkload {
  FloatMatrix vectors;
  std::vector<std::int64_t> cluster_attr;  ///< correlated categorical
  std::vector<double> uniform_attr;        ///< independent numeric in [0,1)
};
HybridWorkload MakeHybridWorkload(const SyntheticOptions& opts);

}  // namespace vdb

#endif  // VDB_CORE_SYNTHETIC_H_
