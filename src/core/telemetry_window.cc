#include "core/telemetry_window.h"

#include <algorithm>
#include <cstdio>

namespace vdb {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// "10s", "0.5s" — the window label value.
std::string FormatWindow(double seconds) {
  char buf[32];
  if (seconds == static_cast<double>(static_cast<long long>(seconds))) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(seconds));
  } else {
    std::snprintf(buf, sizeof(buf), "%gs", seconds);
  }
  return buf;
}

/// Splits "base{labels}" into base and the raw label list ("" when none).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

}  // namespace

WindowedRegistry::WindowedRegistry(Registry& registry)
    : WindowedRegistry(registry, Options{}) {}

WindowedRegistry::WindowedRegistry(Registry& registry, Options opts)
    : registry_(registry), opts_(opts) {}

WindowedRegistry& WindowedRegistry::Global() {
  static WindowedRegistry* instance =
      new WindowedRegistry(Registry::Global());  // leaked: process lifetime
  return *instance;
}

void WindowedRegistry::Tick(Clock::time_point now) {
  MutexLock lock(mu_);
  if (ring_.empty() && next_boundary_ == Clock::time_point{}) {
    // First tick seeds the ring origin (lazy so tests can inject time).
    origin_ = now;
    next_boundary_ = now + opts_.width;
    return;
  }
  if (now + opts_.width < next_boundary_) {
    // Clock stepped backward (tests inject this; a steady clock cannot):
    // history timestamps are no longer comparable — drop and re-seed.
    ring_.clear();
    origin_ = now;
    next_boundary_ = now + opts_.width;
    return;
  }
  if (now < next_boundary_) return;
  // Long idle gap: recording one identical boundary per missed edge is
  // pointless past ring capacity — skip ahead so at most `slots` edges
  // are materialized.
  const auto max_span = opts_.width * static_cast<std::int64_t>(opts_.slots);
  if (now - next_boundary_ > max_span) next_boundary_ = now - max_span;
  Registry::Snapshot snap = registry_.Snap();
  while (next_boundary_ <= now) {
    ring_.push_back(Boundary{next_boundary_, snap});
    if (ring_.size() > opts_.slots) ring_.pop_front();
    next_boundary_ += opts_.width;
  }
}

bool WindowedRegistry::BaselineFor(double window_seconds,
                                   Clock::time_point now,
                                   Boundary* out) const {
  MutexLock lock(mu_);
  if (ring_.empty()) {
    out->at = next_boundary_ == Clock::time_point{} ? now : origin_;
    out->snap = Registry::Snapshot{};
    return false;
  }
  const auto cutoff =
      now - std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(window_seconds));
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->at <= cutoff) {
      *out = *it;
      return true;
    }
  }
  *out = ring_.front();  // registry younger than the window
  return true;
}

WindowedRegistry::CounterWindow WindowedRegistry::CounterOver(
    const std::string& name, double window_seconds,
    Clock::time_point now) const {
  return CounterOver(registry_.Snap(), name, window_seconds, now);
}

WindowedRegistry::CounterWindow WindowedRegistry::CounterOver(
    const Registry::Snapshot& live, const std::string& name,
    double window_seconds, Clock::time_point now) const {
  Boundary base;
  BaselineFor(window_seconds, now, &base);
  CounterWindow view;
  view.seconds =
      std::max(0.0, std::chrono::duration<double>(now - base.at).count());
  auto it = live.counters.find(name);
  std::uint64_t cur = it != live.counters.end() ? it->second : 0;
  auto bit = base.snap.counters.find(name);
  std::uint64_t prev = bit != base.snap.counters.end() ? bit->second : 0;
  view.delta = cur >= prev ? cur - prev : 0;  // racing Reset clamps
  return view;
}

WindowedRegistry::HistogramWindow WindowedRegistry::HistogramOver(
    const std::string& name, double window_seconds,
    Clock::time_point now) const {
  return HistogramOver(registry_.Snap(), name, window_seconds, now);
}

WindowedRegistry::HistogramWindow WindowedRegistry::HistogramOver(
    const Registry::Snapshot& live, const std::string& name,
    double window_seconds, Clock::time_point now) const {
  Boundary base;
  BaselineFor(window_seconds, now, &base);
  HistogramWindow view;
  view.seconds =
      std::max(0.0, std::chrono::duration<double>(now - base.at).count());
  auto it = live.histograms.find(name);
  if (it == live.histograms.end()) return view;
  auto bit = base.snap.histograms.find(name);
  view.delta = bit != base.snap.histograms.end()
                   ? it->second.DeltaSince(bit->second)
                   : it->second;
  return view;
}

std::string WindowedRegistry::RenderPrometheus(
    std::span<const double> windows_seconds, Clock::time_point now) const {
  Registry::Snapshot live = registry_.Snap();
  std::string out;
  auto line = [&](const std::string& base, const char* rule,
                  const std::string& labels, double window, double value) {
    out += base + ":" + rule + "{";
    if (!labels.empty()) out += labels + ",";
    out += "window=\"" + FormatWindow(window) + "\"} " + FormatDouble(value) +
           "\n";
  };
  for (const auto& [name, value] : live.counters) {
    (void)value;
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    for (double w : windows_seconds) {
      CounterWindow v = CounterOver(live, name, w, now);
      line(base, "rate", labels, w, v.RatePerSec());
    }
  }
  for (const auto& [name, snap] : live.histograms) {
    (void)snap;
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    for (double w : windows_seconds) {
      HistogramWindow v = HistogramOver(live, name, w, now);
      line(base, "rate", labels, w, v.RatePerSec());
      line(base, "p50", labels, w, v.delta.Percentile(50));
      line(base, "p95", labels, w, v.delta.Percentile(95));
      line(base, "p99", labels, w, v.delta.Percentile(99));
    }
  }
  return out;
}

std::string WindowedRegistry::RenderJson(std::span<const double> windows_seconds,
                                         Clock::time_point now) const {
  Registry::Snapshot live = registry_.Snap();
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e.push_back('\\');
      e.push_back(c);
    }
    return e;
  };
  std::string out = "{\"windows\":{";
  bool first_w = true;
  for (double w : windows_seconds) {
    if (!first_w) out += ",";
    first_w = false;
    out += "\"" + FormatWindow(w) + "\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : live.counters) {
      (void)value;
      CounterWindow v = CounterOver(live, name, w, now);
      if (!first) out += ",";
      first = false;
      out += "\"" + escape(name) +
             "\":{\"delta\":" + std::to_string(v.delta) +
             ",\"rate\":" + FormatDouble(v.RatePerSec()) + "}";
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, snap] : live.histograms) {
      (void)snap;
      HistogramWindow v = HistogramOver(live, name, w, now);
      if (!first) out += ",";
      first = false;
      out += "\"" + escape(name) +
             "\":{\"count\":" + std::to_string(v.Count()) +
             ",\"rate\":" + FormatDouble(v.RatePerSec()) +
             ",\"p50\":" + FormatDouble(v.delta.Percentile(50)) +
             ",\"p95\":" + FormatDouble(v.delta.Percentile(95)) +
             ",\"p99\":" + FormatDouble(v.delta.Percentile(99)) + "}";
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void WindowedRegistry::ResetForTest(Clock::time_point now) {
  MutexLock lock(mu_);
  ring_.clear();
  origin_ = now;
  next_boundary_ = now + opts_.width;
}

}  // namespace vdb
