#include "core/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vdb {

namespace {

/// Relaxed double accumulation (std::atomic<double>::fetch_add is C++20
/// but not universally lock-free; the CAS loop is).
void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Splits "base{labels}" into base and the raw label list ("" when none).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // keep the inner "k=\"v\",..." without braces
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

}  // namespace

std::size_t TelemetryStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kTelemetryStripes;
  return stripe;
}

// ------------------------------------------------------- HistogramSnapshot

std::uint64_t HistogramSnapshot::TotalCount() const {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

double HistogramSnapshot::Percentile(double p) const {
  std::uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    double next = cum + static_cast<double>(counts[b]);
    if (next >= target) {
      double lo = b == 0 ? 0.0 : bounds[b - 1];
      // The +Inf bucket has no width: report its lower edge.
      if (b >= bounds.size()) return lo;
      double hi = bounds[b];
      double frac = (target - cum) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.bounds = bounds;
  d.counts.resize(counts.size(), 0);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    std::uint64_t prev = b < earlier.counts.size() ? earlier.counts[b] : 0;
    d.counts[b] = counts[b] >= prev ? counts[b] - prev : 0;
  }
  d.sum = sum >= earlier.sum ? sum - earlier.sum : 0.0;
  return d;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.size() > kMaxBounds) bounds_.resize(kMaxBounds);
}

void Histogram::Observe(double value) {
  // First edge >= value: inclusive upper edges (Prometheus `le`).
  std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  Stripe& s = stripes_[TelemetryStripe()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(s.sum, value);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      total += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Percentile(double p) const { return Snapshot().Percentile(p); }

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = BucketCounts();
  snap.sum = Sum();
  return snap;
}

void Histogram::Reset() {
  for (auto& s : stripes_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::span<const double> Histogram::LatencyBoundsSeconds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double edge = 1e-6;  // 1us
    for (int i = 0; i < 27; ++i) {
      b.push_back(edge);
      edge *= 2.0;
    }
    return b;  // last edge ~= 67s
  }();
  return bounds;
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::span<const double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::LatencyBoundsSeconds() : bounds);
  }
  return *slot;
}

Registry::Snapshot Registry::Snap() const {
  MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

std::string Registry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  std::string last_typed;  // base name of the last emitted # TYPE line
  auto type_line = [&](const std::string& base, const char* kind) {
    if (base == last_typed) return;
    out += "# TYPE " + base + " " + kind + "\n";
    last_typed = base;
  };
  for (const auto& [name, c] : counters_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    type_line(base, "counter");
    out += name + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    type_line(base, "gauge");
    out += name + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    type_line(base, "histogram");
    // One merged read per histogram: buckets, sum, and count in this
    // render all describe the same snapshot (satellite: reset race).
    HistogramSnapshot snap = h->Snapshot();
    std::uint64_t cum = 0;
    auto bucket_line = [&](const std::string& le, std::uint64_t v) {
      out += base + "_bucket{";
      if (!labels.empty()) out += labels + ",";
      out += "le=\"" + le + "\"} " + std::to_string(v) + "\n";
    };
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      cum += snap.counts[b];
      bucket_line(FormatDouble(snap.bounds[b]), cum);
    }
    cum += snap.counts[snap.bounds.size()];
    bucket_line("+Inf", cum);
    std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + " " + FormatDouble(snap.sum) + "\n";
    out += base + "_count" + suffix + " " + std::to_string(cum) + "\n";
  }
  return out;
}

std::string Registry::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{";
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e.push_back('\\');
      e.push_back(c);
    }
    return e;
  };
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":" + std::to_string(g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    // Single snapshot: count, sum, and the three percentiles agree.
    HistogramSnapshot snap = h->Snapshot();
    out += "\"" + escape(name) +
           "\":{\"count\":" + std::to_string(snap.TotalCount()) +
           ",\"sum\":" + FormatDouble(snap.sum) +
           ",\"p50\":" + FormatDouble(snap.Percentile(50)) +
           ",\"p95\":" + FormatDouble(snap.Percentile(95)) +
           ",\"p99\":" + FormatDouble(snap.Percentile(99)) + "}";
  }
  out += "}}";
  return out;
}

void Registry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace vdb
