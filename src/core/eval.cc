#include "core/eval.h"

#include <algorithm>
#include <limits>

#include "core/topk.h"

namespace vdb {

std::vector<std::vector<Neighbor>> GroundTruth(const FloatMatrix& data,
                                               const FloatMatrix& queries,
                                               const Scorer& scorer,
                                               std::size_t k) {
  std::vector<std::vector<Neighbor>> truth(queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    TopK top(k);
    const float* query = queries.row(q);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      top.Push(static_cast<VectorId>(i), scorer.Distance(query, data.row(i)));
    }
    truth[q] = top.Take();
  }
  return truth;
}

double RecallAt(const std::vector<Neighbor>& result,
                const std::vector<Neighbor>& truth, std::size_t k) {
  if (truth.empty() || k == 0) return 1.0;
  std::size_t upto = std::min(k, truth.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < std::min(k, result.size()); ++i) {
    for (std::size_t j = 0; j < upto; ++j) {
      if (result[i].id == truth[j].id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(upto);
}

double MeanRecall(const std::vector<std::vector<Neighbor>>& results,
                  const std::vector<std::vector<Neighbor>>& truths,
                  std::size_t k) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    sum += RecallAt(results[i], truths[i], k);
  }
  return sum / static_cast<double>(results.size());
}

double RelativeContrast(const FloatMatrix& data, const float* query,
                        const Scorer& scorer) {
  double dmin = std::numeric_limits<double>::max();
  double dmax = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    double dist = scorer.Distance(query, data.row(i));
    dmin = std::min(dmin, dist);
    dmax = std::max(dmax, dist);
  }
  if (dmin <= 0.0) dmin = 1e-12;
  return (dmax - dmin) / dmin;
}

}  // namespace vdb
