#ifndef VDB_CORE_SCORE_SELECTION_H_
#define VDB_CORE_SCORE_SELECTION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/status.h"
#include "core/types.h"

namespace vdb {

/// Automatic similarity-score selection (paper §2.6(1): "approaches for
/// similarity score selection remain lacking"; EuclidesDB queries many
/// scores and leaves the decision to the user). This helper closes that
/// loop with weak supervision: given pairs labeled same-entity /
/// different-entity, each candidate score is rated by how well it
/// separates the two populations, measured as AUC (the probability a
/// random same-pair scores closer than a random different-pair).
struct ScoreCandidate {
  MetricSpec spec;
  double auc = 0.0;      ///< separation quality in [0.5 crosses, 1 perfect]
  std::string name;
};

struct ScoreSelectionInput {
  const FloatMatrix* data = nullptr;
  /// Row-index pairs known to refer to the same entity.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> same_pairs;
  /// Row-index pairs known to refer to different entities.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> diff_pairs;
};

/// Evaluates each candidate spec on the labeled pairs and returns them
/// sorted by descending AUC (first element = recommended score).
Result<std::vector<ScoreCandidate>> SelectScore(
    const ScoreSelectionInput& input, const std::vector<MetricSpec>& specs);

/// Convenience: the default candidate slate (L2, inner product, cosine,
/// Manhattan, Minkowski-3) plus, when enough same-pairs exist, a learned
/// Mahalanobis metric.
Result<std::vector<ScoreCandidate>> SelectScoreDefaultSlate(
    const ScoreSelectionInput& input);

}  // namespace vdb

#endif  // VDB_CORE_SCORE_SELECTION_H_
