#include "core/synthetic.h"

#include <cmath>

#include "core/rng.h"
#include "core/simd.h"

namespace vdb {

FloatMatrix UniformCube(const SyntheticOptions& opts) {
  Rng rng(opts.seed);
  FloatMatrix data(opts.n, opts.dim);
  for (std::size_t i = 0; i < opts.n; ++i) {
    float* row = data.row(i);
    for (std::size_t j = 0; j < opts.dim; ++j)
      row[j] = rng.NextFloat(0.0f, 1.0f);
  }
  return data;
}

namespace {

FloatMatrix MakeCenters(std::size_t k, std::size_t dim, Rng* rng) {
  FloatMatrix centers(k, dim);
  for (std::size_t c = 0; c < k; ++c) {
    float* row = centers.row(c);
    for (std::size_t j = 0; j < dim; ++j) row[j] = rng->NextFloat(0.0f, 1.0f);
  }
  return centers;
}

}  // namespace

FloatMatrix GaussianClusters(const SyntheticOptions& opts) {
  Rng rng(opts.seed);
  FloatMatrix centers = MakeCenters(opts.num_clusters, opts.dim, &rng);
  FloatMatrix data(opts.n, opts.dim);
  for (std::size_t i = 0; i < opts.n; ++i) {
    std::size_t c = rng.Next(opts.num_clusters);
    const float* center = centers.row(c);
    float* row = data.row(i);
    for (std::size_t j = 0; j < opts.dim; ++j)
      row[j] = center[j] + opts.cluster_std * rng.NextGaussian();
  }
  return data;
}

FloatMatrix UnitSphere(const SyntheticOptions& opts) {
  Rng rng(opts.seed);
  FloatMatrix data(opts.n, opts.dim);
  for (std::size_t i = 0; i < opts.n; ++i) {
    float* row = data.row(i);
    for (std::size_t j = 0; j < opts.dim; ++j) row[j] = rng.NextGaussian();
    float norm = std::sqrt(simd::NormSq(row, opts.dim));
    if (norm <= 0.0f) {
      row[0] = 1.0f;
      continue;
    }
    for (std::size_t j = 0; j < opts.dim; ++j) row[j] /= norm;
  }
  return data;
}

FloatMatrix OutOfDistributionQueries(const SyntheticOptions& opts,
                                     std::size_t num_queries) {
  SyntheticOptions q = opts;
  q.n = num_queries;
  q.seed = opts.seed * 2654435761u + 17;  // decorrelate center placement
  return GaussianClusters(q);
}

FloatMatrix PerturbedQueries(const FloatMatrix& data, std::size_t num_queries,
                             float noise_std, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix queries(num_queries, data.cols());
  for (std::size_t i = 0; i < num_queries; ++i) {
    const float* src = data.row(rng.Next(data.rows()));
    float* row = queries.row(i);
    for (std::size_t j = 0; j < data.cols(); ++j)
      row[j] = src[j] + noise_std * rng.NextGaussian();
  }
  return queries;
}

HybridWorkload MakeHybridWorkload(const SyntheticOptions& opts) {
  Rng rng(opts.seed);
  FloatMatrix centers = MakeCenters(opts.num_clusters, opts.dim, &rng);
  HybridWorkload w;
  w.vectors = FloatMatrix(opts.n, opts.dim);
  w.cluster_attr.resize(opts.n);
  w.uniform_attr.resize(opts.n);
  for (std::size_t i = 0; i < opts.n; ++i) {
    std::size_t c = rng.Next(opts.num_clusters);
    const float* center = centers.row(c);
    float* row = w.vectors.row(i);
    for (std::size_t j = 0; j < opts.dim; ++j)
      row[j] = center[j] + opts.cluster_std * rng.NextGaussian();
    w.cluster_attr[i] = static_cast<std::int64_t>(c);
    w.uniform_attr[i] = rng.NextDouble();
  }
  return w;
}

}  // namespace vdb
