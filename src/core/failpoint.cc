#include "core/failpoint.h"

#include <unistd.h>

#include <cstdlib>
#include <random>
#include <unordered_map>

#include "core/sync.h"
#include "core/telemetry.h"

namespace vdb {

namespace {

bool ConsumePrefix(std::string_view* s, std::string_view prefix) {
  if (s->substr(0, prefix.size()) != prefix) return false;
  s->remove_prefix(prefix.size());
  return true;
}

bool ParseU64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseProb(std::string_view s, double* out) {
  try {
    std::size_t used = 0;
    double v = std::stod(std::string(s), &used);
    // !(v >= 0 && v <= 1) rather than (v < 0 || v > 1): NaN compares
    // false both ways, so the naive form would accept "prob:nan".
    if (used != s.size() || !(v >= 0.0 && v <= 1.0)) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

Result<FailpointSpec> ParseFailpointSpec(std::string_view text) {
  FailpointSpec spec;
  if (text.empty()) return spec;
  while (!text.empty()) {
    std::size_t plus = text.find('+');
    std::string_view tok = text.substr(0, plus);
    text = plus == std::string_view::npos ? std::string_view{}
                                          : text.substr(plus + 1);
    std::uint64_t n = 0;
    if (tok == "always") {
      // defaults already fire always
    } else if (tok == "off") {
      spec.times = 0;
    } else if (ConsumePrefix(&tok, "prob:")) {
      if (!ParseProb(tok, &spec.probability)) {
        return Status::InvalidArgument("failpoint prob must be in [0,1]");
      }
    } else if (ConsumePrefix(&tok, "every:")) {
      if (!ParseU64(tok, &n) || n == 0) {
        return Status::InvalidArgument("failpoint every:<n> needs n >= 1");
      }
      spec.every = n;
    } else if (ConsumePrefix(&tok, "times:")) {
      if (!ParseU64(tok, &n)) {
        return Status::InvalidArgument("failpoint times:<n> needs a count");
      }
      spec.times = static_cast<std::int64_t>(n);
    } else if (ConsumePrefix(&tok, "after:")) {
      if (!ParseU64(tok, &n)) {
        return Status::InvalidArgument("failpoint after:<n> needs a count");
      }
      spec.skip = n;
    } else if (ConsumePrefix(&tok, "delay:")) {
      if (!ParseU64(tok, &n)) {
        return Status::InvalidArgument("failpoint delay:<ms> needs a count");
      }
      spec.delay_ms = static_cast<std::uint32_t>(n);
    } else {
      return Status::InvalidArgument("unknown failpoint token: " +
                                     std::string(tok));
    }
  }
  return spec;
}

std::atomic<int> Failpoints::armed_count_{0};

struct Failpoints::Impl {
  struct Entry {
    FailpointSpec spec;
    bool armed = false;
    std::uint64_t evaluations = 0;  ///< since (re-)armed; drives skip/every
    std::uint64_t triggers = 0;     ///< since (re-)armed; drives times
    std::uint64_t lifetime_evaluations = 0;
    std::uint64_t lifetime_triggers = 0;
  };
  /// §9.1 edge: Fires()/Arm() call into Registry while holding mu, so
  /// Failpoints::mu -> Registry::mu (never reversed; Registry::mu is a
  /// leaf and Registry never calls back into Failpoints).
  mutable Mutex mu;
  std::unordered_map<std::string, Entry> entries VDB_GUARDED_BY(mu);
  /// Deterministic prob draws.
  std::mt19937_64 rng VDB_GUARDED_BY(mu){0x9E3779B97F4A7C15ull};
};

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

Failpoints::Failpoints() : impl_(new Impl) {
  if (const char* env = std::getenv("VDB_FAILPOINTS")) {
    (void)ArmFromString(env);  // malformed entries are skipped, not fatal
  }
}

void Failpoints::Arm(const std::string& name, FailpointSpec spec) {
  MutexLock lock(impl_->mu);
  Impl::Entry& e = impl_->entries[name];
  if (!e.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  e.armed = true;
  e.spec = spec;
  e.evaluations = 0;
  e.triggers = 0;
  // Lock order is always Failpoints::mu -> Registry::mu (never reversed).
  static Counter& arms =
      Registry::Global().GetCounter("vdb_failpoint_arms_total");
  arms.Inc();
}

Status Failpoints::Arm(const std::string& name, std::string_view spec_text) {
  VDB_ASSIGN_OR_RETURN(FailpointSpec spec, ParseFailpointSpec(spec_text));
  Arm(name, spec);
  return Status::Ok();
}

Status Failpoints::ArmFromString(std::string_view config) {
  Status first_error = Status::Ok();
  while (!config.empty()) {
    std::size_t sep = config.find(';');
    std::string_view entry = config.substr(0, sep);
    config = sep == std::string_view::npos ? std::string_view{}
                                           : config.substr(sep + 1);
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    std::string_view name = entry.substr(0, eq);
    std::string_view spec =
        eq == std::string_view::npos ? std::string_view{} : entry.substr(eq + 1);
    if (name.empty()) {
      if (first_error.ok()) {
        first_error = Status::InvalidArgument("empty failpoint name");
      }
      continue;
    }
    Status s = Arm(std::string(name), spec);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

bool Failpoints::Disarm(const std::string& name) {
  MutexLock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end() || !it->second.armed) return false;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Failpoints::DisarmAll() {
  MutexLock lock(impl_->mu);
  for (auto& [name, e] : impl_->entries) {
    if (e.armed) {
      e.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool Failpoints::Fires(const char* name) {
  MutexLock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end() || !it->second.armed) return false;
  Impl::Entry& e = it->second;
  ++e.lifetime_evaluations;
  std::uint64_t n = e.evaluations++;
  if (n < e.spec.skip) return false;
  if (e.spec.times >= 0 &&
      e.triggers >= static_cast<std::uint64_t>(e.spec.times)) {
    return false;
  }
  if ((n - e.spec.skip) % e.spec.every != 0) return false;
  if (e.spec.probability < 1.0) {
    double draw = std::uniform_real_distribution<double>(0.0, 1.0)(impl_->rng);
    if (draw >= e.spec.probability) return false;
  }
  ++e.triggers;
  ++e.lifetime_triggers;
  // Fires are rare (fault injection only), so the per-name registry
  // lookup here is off any hot path.
  auto& reg = Registry::Global();
  static Counter& fired = reg.GetCounter("vdb_failpoints_fired_total");
  fired.Inc();
  reg.GetCounter("vdb_failpoint_fires_total{name=\"" + std::string(name) +
                 "\"}")
      .Inc();
  return true;
}

std::uint32_t Failpoints::DelayMs(const std::string& name) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end() || !it->second.armed) return 0;
  return it->second.spec.delay_ms;
}

std::uint64_t Failpoints::Evaluations(const std::string& name) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  return it == impl_->entries.end() ? 0 : it->second.lifetime_evaluations;
}

std::uint64_t Failpoints::Triggers(const std::string& name) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->entries.find(name);
  return it == impl_->entries.end() ? 0 : it->second.lifetime_triggers;
}

std::vector<std::string> Failpoints::ArmedNames() const {
  MutexLock lock(impl_->mu);
  std::vector<std::string> names;
  for (const auto& [name, e] : impl_->entries) {
    if (e.armed) names.push_back(name);
  }
  return names;
}

bool FailpointFires(const char* name, std::size_t index) {
  if (!Failpoints::AnyArmed()) return false;
  std::string indexed = std::string(name) + "." + std::to_string(index);
  if (Failpoints::Instance().Fires(indexed.c_str())) return true;
  return Failpoints::Instance().Fires(name);
}

std::uint32_t FailpointDelayMs(const char* name, std::size_t index) {
  if (!Failpoints::AnyArmed()) return 0;
  std::string indexed = std::string(name) + "." + std::to_string(index);
  Failpoints& fp = Failpoints::Instance();
  if (fp.Fires(indexed.c_str())) {
    std::uint32_t ms = fp.DelayMs(indexed);
    return ms > 0 ? ms : 1;
  }
  if (fp.Fires(name)) {
    std::uint32_t ms = fp.DelayMs(name);
    return ms > 0 ? ms : 1;
  }
  return 0;
}

void FailpointCrashNow(const char* name) {
  if (Failpoints::Instance().Fires(name)) ::_exit(2);
}

// Construct the registry at startup so VDB_FAILPOINTS arms before the
// first fast-path AnyArmed() check can short-circuit it.
namespace {
[[maybe_unused]] const bool kFailpointsEnvArmed =
    (Failpoints::Instance(), true);
}  // namespace

}  // namespace vdb
