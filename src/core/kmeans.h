#ifndef VDB_CORE_KMEANS_H_
#define VDB_CORE_KMEANS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "core/types.h"

namespace vdb {

/// Lloyd's k-means with k-means++ seeding. The learned-partitioning
/// workhorse behind IVF coarse quantizers, PQ codebooks, SPANN posting
/// lists, and learning-to-hash bucketing (paper §2.2).
struct KMeansOptions {
  std::size_t k = 16;
  int max_iters = 20;
  std::uint64_t seed = 42;
  /// Stop when the relative improvement of total inertia drops below this.
  double tol = 1e-4;
  /// When true, empty clusters are re-seeded by splitting the largest one
  /// (keeps bucket counts balanced enough for IVF).
  bool reseed_empty = true;
};

struct KMeansResult {
  FloatMatrix centroids;              ///< k x d
  std::vector<std::uint32_t> assignments;  ///< n, cluster of each row
  double inertia = 0.0;               ///< sum of squared dists to centroid
  int iters_run = 0;
};

/// Clusters the rows of `data` (L2 geometry).
Result<KMeansResult> KMeans(const FloatMatrix& data, const KMeansOptions& opts);

/// Index of the centroid nearest to `x` (L2).
std::uint32_t NearestCentroid(const FloatMatrix& centroids, const float* x);

/// Indices of the `n` nearest centroids, ascending by distance.
std::vector<std::uint32_t> NearestCentroids(const FloatMatrix& centroids,
                                            const float* x, std::size_t n);

}  // namespace vdb

#endif  // VDB_CORE_KMEANS_H_
