#ifndef VDB_CORE_FAILPOINT_H_
#define VDB_CORE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace vdb {

/// When and how an armed failpoint triggers. The default spec fires on
/// every evaluation; tokens restrict it (see ParseFailpointSpec).
struct FailpointSpec {
  std::uint64_t skip = 0;     ///< ignore the first `skip` evaluations
  std::int64_t times = -1;    ///< fire at most this many times (-1 = unlimited)
  std::uint64_t every = 1;    ///< fire on every Nth eligible evaluation
  double probability = 1.0;   ///< fire with this probability
  std::uint32_t delay_ms = 50;  ///< payload for delay-style failpoints
};

/// Parses one trigger spec. Tokens are joined by '+':
///   always | off | prob:<p> | every:<n> | times:<n> | after:<n> | delay:<ms>
/// e.g. "after:2+times:1" fires exactly once, on the third evaluation.
Result<FailpointSpec> ParseFailpointSpec(std::string_view text);

/// Process-wide registry of named failpoints — deliberate fault sites
/// compiled into the storage and distributed layers (`wal.append.
/// short_write`, `shard.knn.fail`, ...). Disarmed failpoints cost one
/// relaxed atomic load; armed ones take a mutex (faults are not hot
/// paths). Arm programmatically or via the `VDB_FAILPOINTS` environment
/// variable ("name=spec;name=spec", read once at process start).
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms (or re-arms, resetting counters) failpoint `name`.
  void Arm(const std::string& name, FailpointSpec spec = {});
  /// Arms from textual spec (ParseFailpointSpec syntax).
  Status Arm(const std::string& name, std::string_view spec_text);
  /// Parses and arms a "name=spec;name2=spec2" list (VDB_FAILPOINTS syntax).
  Status ArmFromString(std::string_view config);

  /// Disarms `name`; false when it was not armed.
  bool Disarm(const std::string& name);
  void DisarmAll();

  /// Evaluates `name`: counts the evaluation and reports whether the
  /// fault should trigger now. Disarmed names never fire.
  bool Fires(const char* name);

  /// Delay payload (ms) of an armed failpoint (0 when disarmed).
  std::uint32_t DelayMs(const std::string& name) const;

  /// Lifetime evaluation / trigger counts (survive Disarm of the name).
  std::uint64_t Evaluations(const std::string& name) const;
  std::uint64_t Triggers(const std::string& name) const;

  std::vector<std::string> ArmedNames() const;

  /// Fast disarmed-path check: true iff at least one failpoint is armed.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  Failpoints();
  struct Impl;
  Impl* impl_;  ///< intentionally leaked (process-lifetime singleton)

  static std::atomic<int> armed_count_;
};

/// The instrumentation hook: near-zero cost when nothing is armed.
inline bool FailpointFires(const char* name) {
  if (!Failpoints::AnyArmed()) return false;
  return Failpoints::Instance().Fires(name);
}

/// Indexed variant for per-shard/per-replica sites: "<name>.<index>" is
/// consulted first (targeted injection), then the bare name.
bool FailpointFires(const char* name, std::size_t index);

/// Delay-style hook: milliseconds to stall when "<name>[.<index>]" fires
/// now, 0 otherwise. The caller sleeps; the registry never blocks.
std::uint32_t FailpointDelayMs(const char* name, std::size_t index);

/// Crash-site hook for the fork-and-kill torture harness: `_exit(2)`s
/// the process (no atexit handlers, no flushes — a faithful `kill -9`
/// stand-in) when the named failpoint fires. Sites are compiled into
/// the durability paths (`crash.wal.append.torn`, `crash.manifest.bak`,
/// ...) and cost the usual relaxed load while nothing is armed. Only a
/// test child process should ever arm a `crash.*` name.
void FailpointCrashNow(const char* name);
inline void FailpointCrashSite(const char* name) {
  if (!Failpoints::AnyArmed()) return;
  FailpointCrashNow(name);
}

/// Arms a failpoint for one scope (tests): disarms on destruction.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, FailpointSpec spec = {})
      : name_(std::move(name)) {
    Failpoints::Instance().Arm(name_, spec);
  }
  /// Aborts on a malformed spec: a typo here would otherwise silently
  /// leave the failpoint disarmed and the test vacuously green.
  ScopedFailpoint(std::string name, std::string_view spec_text)
      : name_(std::move(name)) {
    Status st = Failpoints::Instance().Arm(name_, spec_text);
    if (!st.ok()) {
      std::fprintf(stderr, "ScopedFailpoint(%s): %s\n", name_.c_str(),
                   st.ToString().c_str());
      std::abort();
    }
  }
  ~ScopedFailpoint() { Failpoints::Instance().Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace vdb

#endif  // VDB_CORE_FAILPOINT_H_
