#ifndef VDB_CORE_TYPES_H_
#define VDB_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace vdb {

/// External, stable identifier of an entity/vector in a collection.
using VectorId = std::uint64_t;

/// Sentinel for "no id".
inline constexpr VectorId kInvalidVectorId = ~VectorId{0};

/// Read-only view of one dense float vector.
using VectorView = std::span<const float>;

/// Row-major dense matrix of 32-bit floats. The universal in-memory vector
/// container: a dataset is an (n x dim) FloatMatrix.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  float* row(std::size_t i) { return data_.data() + i * cols_; }
  const float* row(std::size_t i) const { return data_.data() + i * cols_; }
  VectorView row_view(std::size_t i) const { return {row(i), cols_}; }

  float& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Appends one row (must have `cols()` elements; first append on an empty
  /// matrix sets the column count).
  void AppendRow(const float* v, std::size_t dim) {
    if (rows_ == 0 && cols_ == 0) cols_ = dim;
    data_.insert(data_.end(), v, v + cols_);
    ++rows_;
  }

  /// Bytes of payload (excluding container overhead).
  std::size_t ByteSize() const { return data_.size() * sizeof(float); }

  void Reserve(std::size_t rows) { data_.reserve(rows * cols_); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// One search hit: external id plus internal score. The library-wide score
/// convention is **distance, lower is better** (similarities such as inner
/// product and cosine are negated / inverted by the Scorer).
struct Neighbor {
  VectorId id = kInvalidVectorId;
  float dist = 0.0f;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;  // deterministic tie-break
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.dist == b.dist;
  }
};

/// Per-query instrumentation filled by every index/operator. All costs the
/// paper's cost models reason about are observable here.
struct SearchStats {
  std::uint64_t distance_comps = 0;  ///< full-precision distance evaluations
  std::uint64_t code_comps = 0;      ///< compressed-domain (ADC/Hamming) evals
  std::uint64_t nodes_visited = 0;   ///< graph nodes / tree leaves / buckets
  std::uint64_t hops = 0;            ///< graph hops or tree descents
  std::uint64_t io_reads = 0;        ///< disk pages read
  std::uint64_t filter_checks = 0;   ///< predicate / bitset probes

  // Distributed scatter-gather health (ShardedCollection::Knn).
  std::uint64_t shards_failed = 0;   ///< shards that contributed no results
                                     ///< (error, deadline, or tripped breaker)
  std::uint64_t shard_retries = 0;   ///< replica reads retried on the primary
  bool partial = false;              ///< results degraded to healthy shards

  SearchStats& operator+=(const SearchStats& o) {
    distance_comps += o.distance_comps;
    code_comps += o.code_comps;
    nodes_visited += o.nodes_visited;
    hops += o.hops;
    io_reads += o.io_reads;
    filter_checks += o.filter_checks;
    shards_failed += o.shards_failed;
    shard_retries += o.shard_retries;
    partial = partial || o.partial;
    return *this;
  }
};

/// Dynamic bitset over dense ids (used for attribute bitmasks, visited
/// sets, and delete maps).
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t n, bool value = false)
      : size_(n), words_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    Trim();
  }

  std::size_t size() const { return size_; }

  void Resize(std::size_t n, bool value = false) {
    std::size_t old_words = words_.size();
    size_ = n;
    words_.resize((n + 63) / 64, value ? ~std::uint64_t{0} : 0);
    if (value && old_words > 0 && old_words <= words_.size()) {
      // Nothing: newly added whole words already set; partial old tail bits
      // beyond the previous size were kept zero by Trim() on earlier ops.
    }
    Trim();
  }

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void Clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void SetAll() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    Trim();
  }
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  Bitset& And(const Bitset& o) {
    for (std::size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
      words_[i] &= o.words_[i];
    return *this;
  }
  Bitset& Or(const Bitset& o) {
    for (std::size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
      words_[i] |= o.words_[i];
    return *this;
  }
  Bitset& Not() {
    for (auto& w : words_) w = ~w;
    Trim();
    return *this;
  }

 private:
  void Trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace vdb

#endif  // VDB_CORE_TYPES_H_
